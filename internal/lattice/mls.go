package lattice

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
)

// MLS capacity limits. DoD 5200.28-STD calls for at most 16 hierarchical
// classifications and 64 categories; packing one access class into a single
// uint64 handle (4 bits of classification + up to 60 category bits) keeps
// every lattice operation a couple of machine instructions, which is the
// "effectively constant-time lattice operations" observation of §5 of the
// paper. Applications needing 61–64 categories can split them across a
// Product of an MLS and a Powerset lattice.
const (
	MaxMLSLevels     = 16
	MaxMLSCategories = 60
	mlsLevelShift    = 60
	mlsCatMask       = (uint64(1) << mlsLevelShift) - 1
)

// MLS is the compartmented security lattice of Figure 1(a): access classes
// are pairs (classification, category set), where classifications come from
// a small total order and categories from an unordered universe. An access
// class dominates another iff its classification is at least as high and
// its category set is a superset. The lattice has numLevels × 2^numCats
// elements and is deliberately not Enumerable; all operations work directly
// on the packed representation.
type MLS struct {
	name     string
	levels   []string // classification names, bottom-up
	cats     []string // category names, bit i ↔ cats[i]
	levelIdx map[string]uint64
	catIdx   map[string]uint
}

var _ Lattice = (*MLS)(nil)
var _ ComplementMinimizer = (*MLS)(nil)

// NewMLS builds a compartmented lattice from classification names (listed
// bottom-up) and category names.
func NewMLS(name string, levels, categories []string) (*MLS, error) {
	if len(levels) == 0 {
		return nil, fmt.Errorf("mls %q: no classification levels", name)
	}
	if len(levels) > MaxMLSLevels {
		return nil, fmt.Errorf("mls %q: %d levels exceeds limit %d", name, len(levels), MaxMLSLevels)
	}
	if len(categories) > MaxMLSCategories {
		return nil, fmt.Errorf("mls %q: %d categories exceeds limit %d", name, len(categories), MaxMLSCategories)
	}
	m := &MLS{
		name:     name,
		levels:   append([]string(nil), levels...),
		cats:     append([]string(nil), categories...),
		levelIdx: make(map[string]uint64, len(levels)),
		catIdx:   make(map[string]uint, len(categories)),
	}
	for i, l := range levels {
		if l == "" {
			return nil, fmt.Errorf("mls %q: empty classification name", name)
		}
		if strings.ContainsAny(l, "<>{},") {
			return nil, fmt.Errorf("mls %q: classification %q contains a reserved character", name, l)
		}
		if _, dup := m.levelIdx[l]; dup {
			return nil, fmt.Errorf("mls %q: duplicate classification %q", name, l)
		}
		m.levelIdx[l] = uint64(i)
	}
	for i, c := range categories {
		if c == "" {
			return nil, fmt.Errorf("mls %q: empty category name", name)
		}
		if strings.ContainsAny(c, "<>{},") {
			return nil, fmt.Errorf("mls %q: category %q contains a reserved character", name, c)
		}
		if _, dup := m.catIdx[c]; dup {
			return nil, fmt.Errorf("mls %q: duplicate category %q", name, c)
		}
		m.catIdx[c] = uint(i)
	}
	return m, nil
}

// MustMLS is NewMLS that panics on error, for static fixtures.
func MustMLS(name string, levels, categories []string) *MLS {
	m, err := NewMLS(name, levels, categories)
	if err != nil {
		panic(err)
	}
	return m
}

// NumLevels returns the number of hierarchical classifications.
func (m *MLS) NumLevels() int { return len(m.levels) }

// NumCategories returns the number of categories.
func (m *MLS) NumCategories() int { return len(m.cats) }

// Count returns the total number of access classes in the lattice.
func (m *MLS) Count() uint64 { return uint64(len(m.levels)) << uint(len(m.cats)) }

// LevelOf packs an access class from a classification name and categories.
func (m *MLS) LevelOf(classification string, categories ...string) (Level, error) {
	cl, ok := m.levelIdx[classification]
	if !ok {
		return 0, fmt.Errorf("mls %q: unknown classification %q", m.name, classification)
	}
	var mask uint64
	for _, c := range categories {
		i, ok := m.catIdx[c]
		if !ok {
			return 0, fmt.Errorf("mls %q: unknown category %q", m.name, c)
		}
		mask |= 1 << i
	}
	return Level(cl<<mlsLevelShift | mask), nil
}

// MustLevel is LevelOf that panics on error, for static fixtures.
func (m *MLS) MustLevel(classification string, categories ...string) Level {
	l, err := m.LevelOf(classification, categories...)
	if err != nil {
		panic(err)
	}
	return l
}

// LevelFromParts packs an access class from a classification index
// (0 = lowest) and a category bitmask (bit i ↔ the i-th declared category).
func (m *MLS) LevelFromParts(classification int, catMask uint64) (Level, error) {
	if classification < 0 || classification >= len(m.levels) {
		return 0, fmt.Errorf("mls %q: classification index %d out of range", m.name, classification)
	}
	if catMask&^m.fullMask() != 0 {
		return 0, fmt.Errorf("mls %q: category mask %#x has undeclared bits", m.name, catMask)
	}
	return Level(uint64(classification)<<mlsLevelShift | catMask), nil
}

// Split unpacks a level into its classification index and category mask.
func (m *MLS) Split(l Level) (classification uint64, catMask uint64) {
	m.check(l)
	return uint64(l) >> mlsLevelShift, uint64(l) & mlsCatMask
}

// Name implements Lattice.
func (m *MLS) Name() string { return m.name }

// Top implements Lattice: highest classification, all categories.
func (m *MLS) Top() Level {
	return Level(uint64(len(m.levels)-1)<<mlsLevelShift | m.fullMask())
}

// Bottom implements Lattice: lowest classification, no categories.
func (m *MLS) Bottom() Level { return 0 }

func (m *MLS) fullMask() uint64 { return uint64(1)<<uint(len(m.cats)) - 1 }

// Dominates implements Lattice: classification at least as high and
// category superset.
func (m *MLS) Dominates(a, b Level) bool {
	m.check(a)
	m.check(b)
	return uint64(a)>>mlsLevelShift >= uint64(b)>>mlsLevelShift &&
		uint64(b)&mlsCatMask&^uint64(a) == 0
}

// Lub implements Lattice: max classification, category union.
func (m *MLS) Lub(a, b Level) Level {
	m.check(a)
	m.check(b)
	la, lb := uint64(a)>>mlsLevelShift, uint64(b)>>mlsLevelShift
	if lb > la {
		la = lb
	}
	return Level(la<<mlsLevelShift | (uint64(a)|uint64(b))&mlsCatMask)
}

// Glb implements Lattice: min classification, category intersection.
func (m *MLS) Glb(a, b Level) Level {
	m.check(a)
	m.check(b)
	la, lb := uint64(a)>>mlsLevelShift, uint64(b)>>mlsLevelShift
	if lb < la {
		la = lb
	}
	return Level(la<<mlsLevelShift | uint64(a)&uint64(b)&mlsCatMask)
}

// Covers implements Lattice. The immediate descendants of (s, C) are
// (s, C−{c}) for each category c ∈ C, in ascending bit order, followed by
// (s−1, C) when s > ⊥'s classification. This fixed order is the
// "left-to-right" descent order of the paper's examples.
func (m *MLS) Covers(a Level) []Level {
	m.check(a)
	cl, mask := uint64(a)>>mlsLevelShift, uint64(a)&mlsCatMask
	out := make([]Level, 0, bits.OnesCount64(mask)+1)
	for w := mask; w != 0; w &= w - 1 {
		bit := w & -w
		out = append(out, Level(cl<<mlsLevelShift|mask&^bit))
	}
	if cl > 0 {
		out = append(out, Level((cl-1)<<mlsLevelShift|mask))
	}
	return out
}

// CoveredBy implements Lattice: add one missing category or raise the
// classification one step.
func (m *MLS) CoveredBy(a Level) []Level {
	m.check(a)
	cl, mask := uint64(a)>>mlsLevelShift, uint64(a)&mlsCatMask
	missing := m.fullMask() &^ mask
	out := make([]Level, 0, bits.OnesCount64(missing)+1)
	for w := missing; w != 0; w &= w - 1 {
		bit := w & -w
		out = append(out, Level(cl<<mlsLevelShift|mask|bit))
	}
	if cl < uint64(len(m.levels)-1) {
		out = append(out, Level((cl+1)<<mlsLevelShift|mask))
	}
	return out
}

// Height implements Lattice: (levels−1) + categories.
func (m *MLS) Height() int { return len(m.levels) - 1 + len(m.cats) }

// Contains implements Lattice.
func (m *MLS) Contains(l Level) bool {
	return uint64(l)>>mlsLevelShift < uint64(len(m.levels)) &&
		uint64(l)&mlsCatMask&^m.fullMask() == 0
}

// FormatLevel implements Lattice, rendering e.g. "<TS,{Army,Nuclear}>".
func (m *MLS) FormatLevel(l Level) string {
	m.check(l)
	cl, mask := uint64(l)>>mlsLevelShift, uint64(l)&mlsCatMask
	var names []string
	for i, c := range m.cats {
		if mask&(1<<uint(i)) != 0 {
			names = append(names, c)
		}
	}
	sort.Strings(names)
	return "<" + m.levels[cl] + ",{" + strings.Join(names, ",") + "}>"
}

// ParseLevel implements Lattice, accepting either the FormatLevel form
// "<TS,{A,B}>" or a bare classification name "TS" (meaning no categories).
func (m *MLS) ParseLevel(s string) (Level, error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "<") {
		return m.LevelOf(s)
	}
	if !strings.HasSuffix(s, "}>") {
		return 0, fmt.Errorf("mls %q: level %q not of the form <CL,{a,b}>", m.name, s)
	}
	body := strings.TrimSuffix(strings.TrimPrefix(s, "<"), "}>")
	comma := strings.Index(body, ",{")
	if comma < 0 {
		return 0, fmt.Errorf("mls %q: level %q not of the form <CL,{a,b}>", m.name, s)
	}
	cl := strings.TrimSpace(body[:comma])
	catBody := strings.TrimSpace(body[comma+2:])
	var cats []string
	if catBody != "" {
		for _, c := range strings.Split(catBody, ",") {
			cats = append(cats, strings.TrimSpace(c))
		}
	}
	return m.LevelOf(cl, cats...)
}

// MinComplement implements ComplementMinimizer with the closed form of
// footnote 4: the minimal level l with Lub(l, others) ≽ rhs has
// classification rhs_l when others_l < rhs_l (⊥'s classification
// otherwise) and categories rhs_c − others_c.
func (m *MLS) MinComplement(others, rhs Level) Level {
	m.check(others)
	m.check(rhs)
	oCl, oMask := uint64(others)>>mlsLevelShift, uint64(others)&mlsCatMask
	rCl, rMask := uint64(rhs)>>mlsLevelShift, uint64(rhs)&mlsCatMask
	cl := uint64(0)
	if oCl < rCl {
		cl = rCl
	}
	return Level(cl<<mlsLevelShift | rMask&^oMask)
}

func (m *MLS) check(l Level) {
	if !m.Contains(l) {
		panic(fmt.Sprintf("mls %q: level handle %d out of range", m.name, l))
	}
}
