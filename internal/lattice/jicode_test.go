package lattice

import (
	"testing"

	_ "embed"
)

// jiFixtures returns lattices exercising the join-irreducible encoding,
// including the two canonical non-distributive lattices M3 and N5 where
// code unions/intersections are not themselves codes.
func jiFixtures(t *testing.T) map[string]*Explicit {
	t.Helper()
	m3, err := NewExplicit("M3",
		[]string{"bot", "a", "b", "c", "top"},
		map[string][]string{
			"top": {"a", "b", "c"},
			"a":   {"bot"}, "b": {"bot"}, "c": {"bot"},
		})
	if err != nil {
		t.Fatal(err)
	}
	n5, err := NewExplicit("N5",
		[]string{"bot", "a", "b", "c", "top"},
		map[string][]string{
			"top": {"a", "c"},
			"a":   {"b"},
			"b":   {"bot"},
			"c":   {"bot"},
		})
	if err != nil {
		t.Fatal(err)
	}
	chainish, err := NewExplicit("chain3",
		[]string{"lo", "mid", "hi"},
		map[string][]string{"hi": {"mid"}, "mid": {"lo"}})
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*Explicit{
		"figure1b": FigureOneB(),
		"m3":       m3,
		"n5":       n5,
		"chain3":   chainish,
	}
}

// TestJICodeAgreesWithExplicit differentially tests the encoding against
// the closure-table operations on every element pair.
func TestJICodeAgreesWithExplicit(t *testing.T) {
	for name, base := range jiFixtures(t) {
		j := MustJICode(base)
		for _, a := range base.Elements() {
			for _, b := range base.Elements() {
				if j.Dominates(a, b) != base.Dominates(a, b) {
					t.Errorf("%s: JI Dominates(%s,%s) disagrees", name,
						base.FormatLevel(a), base.FormatLevel(b))
				}
				if got, want := j.Lub(a, b), base.Lub(a, b); got != want {
					t.Errorf("%s: JI Lub(%s,%s)=%s want %s", name,
						base.FormatLevel(a), base.FormatLevel(b),
						base.FormatLevel(got), base.FormatLevel(want))
				}
				if got, want := j.Glb(a, b), base.Glb(a, b); got != want {
					t.Errorf("%s: JI Glb(%s,%s)=%s want %s", name,
						base.FormatLevel(a), base.FormatLevel(b),
						base.FormatLevel(got), base.FormatLevel(want))
				}
			}
		}
	}
}

// TestJICodeCompactness checks the encoding is narrower than the closure
// representation: the number of irreducibles is below the element count,
// and codes grow with the order (monotone popcount).
func TestJICodeCompactness(t *testing.T) {
	base := FigureOneB()
	j := MustJICode(base)
	if j.NumIrreducibles() >= base.Size() {
		t.Errorf("irreducibles = %d, elements = %d", j.NumIrreducibles(), base.Size())
	}
	if j.CodeWords() != 1 {
		t.Errorf("code words = %d, want 1 for a 7-element lattice", j.CodeWords())
	}
	for _, a := range base.Elements() {
		for _, b := range base.Elements() {
			if base.Dominates(a, b) && j.PopCount(a) < j.PopCount(b) {
				t.Errorf("popcount not monotone: %s vs %s",
					base.FormatLevel(a), base.FormatLevel(b))
			}
		}
	}
	// Top's code has every irreducible; bottom's none.
	if j.PopCount(base.Top()) != j.NumIrreducibles() {
		t.Error("top code incomplete")
	}
	if j.PopCount(base.Bottom()) != 0 {
		t.Error("bottom code non-empty")
	}
	if bits := j.SpaceBits(); bits <= 0 {
		t.Errorf("space = %d", bits)
	}
	// Code returns a defensive copy.
	c := j.Code(base.Top())
	c[0] = 0
	if j.PopCount(base.Top()) != j.NumIrreducibles() {
		t.Error("Code leaked internal state")
	}
}

// TestJICodeOneElement covers the degenerate lattice with no
// irreducibles.
func TestJICodeOneElement(t *testing.T) {
	one, err := NewExplicit("one", []string{"x"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	j, err := NewJICode(one)
	if err != nil {
		t.Fatal(err)
	}
	x := one.Top()
	if !j.Dominates(x, x) || j.Lub(x, x) != x || j.Glb(x, x) != x {
		t.Error("one-element ops wrong")
	}
}
