package lattice

import "testing"

func TestInstrumentNilIsIdentity(t *testing.T) {
	l := MustChain("c", "L", "M", "H")
	if got := Instrument(l, nil); got != Lattice(l) {
		t.Errorf("Instrument(l, nil) = %T, want the lattice unchanged", got)
	}
}

func TestCountedForwardsAndCounts(t *testing.T) {
	l := MustChain("c", "L", "M", "H")
	var c OpCounts
	w := Instrument(l, &c)
	if w == Lattice(l) {
		t.Fatal("Instrument with counts returned the bare lattice")
	}

	m, _ := l.ParseLevel("M")
	h, _ := l.ParseLevel("H")
	if got := w.Lub(m, h); got != h {
		t.Errorf("Lub = %v, want %v", got, h)
	}
	if got := w.Glb(m, h); got != m {
		t.Errorf("Glb = %v, want %v", got, m)
	}
	if !w.Dominates(h, m) {
		t.Error("Dominates(h, m) = false")
	}
	if len(w.Covers(h)) != 1 {
		t.Errorf("Covers(h) = %v", w.Covers(h))
	}
	// Uncounted forwards.
	if w.Top() != l.Top() || w.Bottom() != l.Bottom() {
		t.Error("Top/Bottom not forwarded")
	}
	if w.Name() != l.Name() || w.Height() != l.Height() {
		t.Error("Name/Height not forwarded")
	}
	if !w.Contains(m) || w.FormatLevel(m) != "M" {
		t.Error("Contains/FormatLevel not forwarded")
	}
	if _, err := w.ParseLevel("H"); err != nil {
		t.Errorf("ParseLevel: %v", err)
	}
	if len(w.CoveredBy(m)) != 1 {
		t.Errorf("CoveredBy(m) = %v", w.CoveredBy(m))
	}

	want := OpCounts{Lub: 1, Glb: 1, Dominates: 1, Covers: 1}
	if c != want {
		t.Errorf("counts = %+v, want %+v", c, want)
	}
	if c.Total() != 4 {
		t.Errorf("Total = %d, want 4", c.Total())
	}
}
