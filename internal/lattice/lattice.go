// Package lattice implements the security lattices of the paper: partially
// ordered sets of access classes with least-upper-bound (lub) and
// greatest-lower-bound (glb) operations, the dominance relation, and the
// structural quantities (height H, branching factor B, path sum M) the
// complexity analysis of Theorem 5.2 is stated in.
//
// Several families are provided:
//
//   - Explicit: an arbitrary finite lattice given by its Hasse diagram
//     (cover relation), with dominance and lub/glb answered in near
//     constant time through a reflexive-transitive-closure bitset encoding
//     (the role played by the Talamo–Vocca structure and the Aït-Kaci
//     et al. encodings cited in §5 of the paper).
//   - Chain: a totally ordered set of levels (e.g. U < C < S < TS).
//   - Powerset: the lattice of subsets of a small universe.
//   - MLS: the standard compartmented military lattice of pairs
//     (classification, category set) from Figure 1(a) and DoD 5200.28-STD,
//     encoded in a single machine word for constant-time operations.
//   - Product: the component-wise product of two enumerable lattices.
//
// Levels are opaque uint64 handles interpreted by their lattice. Handles
// from different lattices must never be mixed; implementations panic when
// they can detect misuse.
package lattice

import (
	"fmt"
	"sort"
)

// Level is an opaque handle naming one element of a specific Lattice.
// For enumerable lattices the handle is a dense index; for MLS lattices it
// packs the classification and category bits.
type Level uint64

// Lattice is a finite (or finitely representable) security lattice.
//
// All implementations in this package are immutable after construction and
// safe for concurrent use.
type Lattice interface {
	// Name returns a short human-readable description of the lattice.
	Name() string

	// Top returns the greatest element ⊤.
	Top() Level

	// Bottom returns the least element ⊥.
	Bottom() Level

	// Dominates reports whether a ≽ b.
	Dominates(a, b Level) bool

	// Lub returns the least upper bound a ⊔ b.
	Lub(a, b Level) Level

	// Glb returns the greatest lower bound a ⊓ b.
	Glb(a, b Level) Level

	// Covers returns the immediate descendants of a: the maximal levels
	// strictly dominated by a. The order is deterministic and fixed at
	// construction; Algorithm 3.1's "left-to-right" descent convention
	// follows this order. The caller must not modify the returned slice.
	Covers(a Level) []Level

	// CoveredBy returns the immediate ancestors of a: the minimal levels
	// strictly dominating a. The caller must not modify the returned slice.
	CoveredBy(a Level) []Level

	// Height returns H, the number of edges on a longest chain in the
	// lattice (0 for the one-element lattice).
	Height() int

	// Contains reports whether the handle names an element of this lattice.
	Contains(l Level) bool

	// FormatLevel renders the level for humans.
	FormatLevel(l Level) string

	// ParseLevel parses the textual form produced by FormatLevel.
	ParseLevel(s string) (Level, error)
}

// Enumerable is implemented by lattices small enough to list exhaustively.
// Validation, brute-force oracles, and DOT export require it.
type Enumerable interface {
	Lattice
	// Elements returns every level, in a deterministic order. The caller
	// must not modify the returned slice.
	Elements() []Level
}

// ComplementMinimizer is implemented by lattices on which the Minlevel
// computation of Algorithm 3.1 admits a closed form (footnote 4 of the
// paper): compartment-structured lattices where the minimal l with
// lub(l, others) ≽ rhs is unique.
type ComplementMinimizer interface {
	Lattice
	// MinComplement returns the unique minimal level l such that
	// Lub(l, others) dominates rhs.
	MinComplement(others, rhs Level) Level
}

// LubAll folds Lub over a non-empty set of levels; with no levels it
// returns the lattice bottom (the identity of ⊔).
func LubAll(l Lattice, levels ...Level) Level {
	acc := l.Bottom()
	for _, x := range levels {
		acc = l.Lub(acc, x)
	}
	return acc
}

// GlbAll folds Glb over a set of levels; with no levels it returns the
// lattice top (the identity of ⊓).
func GlbAll(l Lattice, levels ...Level) Level {
	acc := l.Top()
	for _, x := range levels {
		acc = l.Glb(acc, x)
	}
	return acc
}

// Comparable reports whether a and b are related by dominance in either
// direction.
func Comparable(l Lattice, a, b Level) bool {
	return l.Dominates(a, b) || l.Dominates(b, a)
}

// StrictlyDominates reports a ≻ b: a ≽ b and a ≠ b.
func StrictlyDominates(l Lattice, a, b Level) bool {
	return a != b && l.Dominates(a, b)
}

// CoversAbove returns the maximal levels l' with a ≻ l' ≽ lo — the DSet of
// Algorithm 3.1's BigLoop and the Trylevels of Minlevel, restricted to stay
// above the known lower bound lo. In a finite lattice these are exactly the
// immediate descendants of a that dominate lo.
func CoversAbove(l Lattice, a, lo Level) []Level {
	covers := l.Covers(a)
	out := make([]Level, 0, len(covers))
	for _, c := range covers {
		if l.Dominates(c, lo) {
			out = append(out, c)
		}
	}
	return out
}

// Branching returns B, the maximum number of immediate predecessors
// (CoveredBy) over all elements, for an enumerable lattice.
func Branching(l Enumerable) int {
	b := 0
	for _, e := range l.Elements() {
		if n := len(l.CoveredBy(e)); n > b {
			b = n
		}
	}
	return b
}

// DownBranching returns the maximum number of immediate descendants
// (Covers) over all elements. Algorithm 3.1's descent steps fan out by this
// quantity.
func DownBranching(l Enumerable) int {
	b := 0
	for _, e := range l.Elements() {
		if n := len(l.Covers(e)); n > b {
			b = n
		}
	}
	return b
}

// PathSumM returns the paper's M: the maximum, over all maximal chains from
// ⊤ to ⊥, of the sum of the (downward) branching factors of the chain's
// elements. M ≤ B·H and M ≤ |L| + |cover relation|.
func PathSumM(l Enumerable) int {
	memo := make(map[Level]int)
	var walk func(Level) int
	walk = func(a Level) int {
		if v, ok := memo[a]; ok {
			return v
		}
		covers := l.Covers(a)
		best := 0
		for _, c := range covers {
			if v := walk(c); v > best {
				best = v
			}
		}
		v := len(covers) + best
		memo[a] = v
		return v
	}
	return walk(l.Top())
}

// ChainDown returns one maximal chain from a down to ⊥ following the first
// cover at each step. Useful for tests and examples.
func ChainDown(l Lattice, a Level) []Level {
	chain := []Level{a}
	for {
		covers := l.Covers(chain[len(chain)-1])
		if len(covers) == 0 {
			return chain
		}
		chain = append(chain, covers[0])
	}
}

// CheckError describes a violated lattice law found by Check.
type CheckError struct {
	Law    string // which law failed
	Detail string
}

func (e *CheckError) Error() string {
	return fmt.Sprintf("lattice: %s law violated: %s", e.Law, e.Detail)
}

// Check exhaustively verifies the lattice laws on an enumerable lattice:
// dominance is a partial order with the stated top and bottom; Lub and Glb
// return least upper and greatest lower bounds; Covers/CoveredBy agree with
// dominance. It is O(n³) and intended for tests and tool validation, not
// hot paths.
func Check(l Enumerable) error {
	elems := l.Elements()
	for _, a := range elems {
		if !l.Contains(a) {
			return &CheckError{"containment", fmt.Sprintf("element %s not Contains", l.FormatLevel(a))}
		}
		if !l.Dominates(a, a) {
			return &CheckError{"reflexivity", l.FormatLevel(a)}
		}
		if !l.Dominates(l.Top(), a) {
			return &CheckError{"top", fmt.Sprintf("⊤ does not dominate %s", l.FormatLevel(a))}
		}
		if !l.Dominates(a, l.Bottom()) {
			return &CheckError{"bottom", fmt.Sprintf("%s does not dominate ⊥", l.FormatLevel(a))}
		}
	}
	for _, a := range elems {
		for _, b := range elems {
			if a != b && l.Dominates(a, b) && l.Dominates(b, a) {
				return &CheckError{"antisymmetry", fmt.Sprintf("%s vs %s", l.FormatLevel(a), l.FormatLevel(b))}
			}
			lub := l.Lub(a, b)
			if !l.Dominates(lub, a) || !l.Dominates(lub, b) {
				return &CheckError{"lub-upper", fmt.Sprintf("%s ⊔ %s = %s", l.FormatLevel(a), l.FormatLevel(b), l.FormatLevel(lub))}
			}
			glb := l.Glb(a, b)
			if !l.Dominates(a, glb) || !l.Dominates(b, glb) {
				return &CheckError{"glb-lower", fmt.Sprintf("%s ⊓ %s = %s", l.FormatLevel(a), l.FormatLevel(b), l.FormatLevel(glb))}
			}
			for _, c := range elems {
				if l.Dominates(b, c) && l.Dominates(c, a) && !l.Dominates(b, a) {
					return &CheckError{"transitivity", fmt.Sprintf("%s ≥ %s ≥ %s", l.FormatLevel(b), l.FormatLevel(c), l.FormatLevel(a))}
				}
				if l.Dominates(c, a) && l.Dominates(c, b) && !l.Dominates(c, lub) {
					return &CheckError{"lub-least", fmt.Sprintf("%s is an upper bound of %s,%s below their lub %s",
						l.FormatLevel(c), l.FormatLevel(a), l.FormatLevel(b), l.FormatLevel(lub))}
				}
				if l.Dominates(a, c) && l.Dominates(b, c) && !l.Dominates(glb, c) {
					return &CheckError{"glb-greatest", fmt.Sprintf("%s is a lower bound of %s,%s above their glb %s",
						l.FormatLevel(c), l.FormatLevel(a), l.FormatLevel(b), l.FormatLevel(glb))}
				}
			}
		}
	}
	// Cover relation agrees with dominance.
	for _, a := range elems {
		for _, c := range l.Covers(a) {
			if !StrictlyDominates(l, a, c) {
				return &CheckError{"covers", fmt.Sprintf("%s listed as cover of %s but not strictly below", l.FormatLevel(c), l.FormatLevel(a))}
			}
			for _, m := range elems {
				if StrictlyDominates(l, a, m) && StrictlyDominates(l, m, c) {
					return &CheckError{"covers-immediate", fmt.Sprintf("%s between %s and its cover %s", l.FormatLevel(m), l.FormatLevel(a), l.FormatLevel(c))}
				}
			}
		}
		for _, u := range l.CoveredBy(a) {
			if !StrictlyDominates(l, u, a) {
				return &CheckError{"covered-by", fmt.Sprintf("%s listed above %s but not strictly above", l.FormatLevel(u), l.FormatLevel(a))}
			}
		}
	}
	return nil
}

// SortLevels sorts a slice of levels by their formatted name, for stable
// human-facing output.
func SortLevels(l Lattice, levels []Level) {
	sort.Slice(levels, func(i, j int) bool {
		return l.FormatLevel(levels[i]) < l.FormatLevel(levels[j])
	})
}
