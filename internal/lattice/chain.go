package lattice

import "fmt"

// Chain is a totally ordered lattice of named levels, bottom first.
// The classic U < Confidential < Secret < TopSecret hierarchy is a Chain.
type Chain struct {
	name  string
	names []string // names[0] is ⊥, names[len-1] is ⊤
	index map[string]int
	elems []Level
	cov   [][]Level // precomputed singleton cover lists
	covBy [][]Level
}

var _ Enumerable = (*Chain)(nil)

// NewChain builds a total order from level names listed bottom-up.
func NewChain(name string, bottomUp ...string) (*Chain, error) {
	if len(bottomUp) == 0 {
		return nil, fmt.Errorf("chain %q: no levels", name)
	}
	c := &Chain{
		name:  name,
		names: append([]string(nil), bottomUp...),
		index: make(map[string]int, len(bottomUp)),
		elems: make([]Level, len(bottomUp)),
		cov:   make([][]Level, len(bottomUp)),
		covBy: make([][]Level, len(bottomUp)),
	}
	for i, nm := range bottomUp {
		if nm == "" {
			return nil, fmt.Errorf("chain %q: empty level name", name)
		}
		if _, dup := c.index[nm]; dup {
			return nil, fmt.Errorf("chain %q: duplicate level %q", name, nm)
		}
		c.index[nm] = i
		c.elems[i] = Level(i)
		if i > 0 {
			c.cov[i] = []Level{Level(i - 1)}
			c.covBy[i-1] = []Level{Level(i)}
		}
	}
	return c, nil
}

// MustChain is NewChain that panics on error, for static fixtures.
func MustChain(name string, bottomUp ...string) *Chain {
	c, err := NewChain(name, bottomUp...)
	if err != nil {
		panic(err)
	}
	return c
}

// Name implements Lattice.
func (c *Chain) Name() string { return c.name }

// Size returns the number of levels.
func (c *Chain) Size() int { return len(c.names) }

// Top implements Lattice.
func (c *Chain) Top() Level { return Level(len(c.names) - 1) }

// Bottom implements Lattice.
func (c *Chain) Bottom() Level { return 0 }

// Dominates implements Lattice.
func (c *Chain) Dominates(a, b Level) bool { c.check(a); c.check(b); return a >= b }

// Lub implements Lattice.
func (c *Chain) Lub(a, b Level) Level {
	c.check(a)
	c.check(b)
	if a >= b {
		return a
	}
	return b
}

// Glb implements Lattice.
func (c *Chain) Glb(a, b Level) Level {
	c.check(a)
	c.check(b)
	if a <= b {
		return a
	}
	return b
}

// Covers implements Lattice.
func (c *Chain) Covers(a Level) []Level { c.check(a); return c.cov[a] }

// CoveredBy implements Lattice.
func (c *Chain) CoveredBy(a Level) []Level { c.check(a); return c.covBy[a] }

// Height implements Lattice.
func (c *Chain) Height() int { return len(c.names) - 1 }

// Contains implements Lattice.
func (c *Chain) Contains(l Level) bool { return int(l) < len(c.names) }

// Elements implements Enumerable.
func (c *Chain) Elements() []Level { return c.elems }

// FormatLevel implements Lattice.
func (c *Chain) FormatLevel(l Level) string { c.check(l); return c.names[l] }

// ParseLevel implements Lattice.
func (c *Chain) ParseLevel(s string) (Level, error) {
	if i, ok := c.index[s]; ok {
		return Level(i), nil
	}
	return 0, fmt.Errorf("chain %q: unknown level %q", c.name, s)
}

// MinComplement implements ComplementMinimizer: in a total order the
// minimal l with max(l, others) ≥ rhs is rhs itself when others < rhs, and
// ⊥ otherwise. This is footnote 4 of the paper restricted to the empty
// category set.
func (c *Chain) MinComplement(others, rhs Level) Level {
	c.check(others)
	c.check(rhs)
	if others < rhs {
		return rhs
	}
	return 0
}

func (c *Chain) check(l Level) {
	if int(l) >= len(c.names) {
		panic(fmt.Sprintf("chain %q: level handle %d out of range", c.name, l))
	}
}
