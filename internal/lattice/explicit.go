package lattice

import (
	"fmt"
	"math/bits"
	"strings"
)

// Explicit is an arbitrary finite lattice defined by its Hasse diagram.
// Construction computes the reflexive-transitive closure of the cover
// relation as bitsets, giving O(|L|/64)-word dominance tests, and
// materializes lub/glb tables so that the lattice-operation cost factor c
// of Theorem 5.2 is a constant, as §5 of the paper argues is achievable
// through lattice encoding. Use NaiveOps to get the un-encoded comparison
// point for the encoding experiments.
type Explicit struct {
	name    string
	names   []string
	index   map[string]int
	covers  [][]Level // covers[i]: immediate descendants, declaration order
	covered [][]Level // covered[i]: immediate ancestors
	up      []bitset  // up[i]: the up-set {j : j ≽ i}, including i
	lub     []Level   // lub[i*n+j]
	glb     []Level   // glb[i*n+j]
	top     Level
	bottom  Level
	height  int
	elems   []Level
}

var (
	_ Enumerable = (*Explicit)(nil)
)

// bitset is a fixed-width bitset over element indices.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)      { b[i/64] |= 1 << (uint(i) % 64) }
func (b bitset) has(i int) bool { return b[i/64]&(1<<(uint(i)%64)) != 0 }

func (b bitset) or(o bitset) {
	for i := range b {
		b[i] |= o[i]
	}
}

// subset reports whether b ⊆ o.
func (b bitset) subset(o bitset) bool {
	for i := range b {
		if b[i]&^o[i] != 0 {
			return false
		}
	}
	return true
}

func (b bitset) and(o bitset) bitset {
	c := make(bitset, len(b))
	for i := range b {
		c[i] = b[i] & o[i]
	}
	return c
}

// NewExplicit builds a lattice from named elements and a cover relation.
// covers maps each element name to the names of its immediate descendants
// (the elements it covers), in the left-to-right order Algorithm 3.1's
// lattice descents will follow. Every name mentioned in covers must appear
// in names. NewExplicit verifies that the resulting order is a lattice
// with a unique top and bottom and that every pair of elements has a least
// upper bound and greatest lower bound; it returns a descriptive error
// otherwise (use poset.FromCovers for arbitrary partial orders).
func NewExplicit(name string, names []string, covers map[string][]string) (*Explicit, error) {
	n := len(names)
	if n == 0 {
		return nil, fmt.Errorf("lattice %q: no elements", name)
	}
	e := &Explicit{
		name:    name,
		names:   append([]string(nil), names...),
		index:   make(map[string]int, n),
		covers:  make([][]Level, n),
		covered: make([][]Level, n),
		up:      make([]bitset, n),
		elems:   make([]Level, n),
	}
	for i, nm := range names {
		if nm == "" {
			return nil, fmt.Errorf("lattice %q: empty element name", name)
		}
		if _, dup := e.index[nm]; dup {
			return nil, fmt.Errorf("lattice %q: duplicate element %q", name, nm)
		}
		e.index[nm] = i
		e.elems[i] = Level(i)
	}
	for from, tos := range covers {
		i, ok := e.index[from]
		if !ok {
			return nil, fmt.Errorf("lattice %q: cover source %q not declared", name, from)
		}
		for _, to := range tos {
			j, ok := e.index[to]
			if !ok {
				return nil, fmt.Errorf("lattice %q: cover target %q not declared", name, to)
			}
			if i == j {
				return nil, fmt.Errorf("lattice %q: self-cover on %q", name, from)
			}
			e.covers[i] = append(e.covers[i], Level(j))
			e.covered[j] = append(e.covered[j], Level(i))
		}
	}
	if err := e.finish(); err != nil {
		return nil, err
	}
	return e, nil
}

// finish computes closures, identifies top/bottom, validates the lattice
// property, and fills the lub/glb tables.
func (e *Explicit) finish() error {
	n := len(e.names)
	// Topological order over the cover DAG (edges point downward).
	indeg := make([]int, n)
	for i := 0; i < n; i++ {
		for _, j := range e.covers[i] {
			indeg[j]++
		}
	}
	queue := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	order := make([]int, 0, n)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		order = append(order, u)
		for _, v := range e.covers[u] {
			indeg[v]--
			if indeg[v] == 0 {
				queue = append(queue, int(v))
			}
		}
	}
	if len(order) != n {
		return fmt.Errorf("lattice %q: cover relation is cyclic", e.name)
	}
	// Up-sets: walk in reverse topological order of the *upward* direction:
	// process tops first so each node can union its ancestors' sets.
	for i := range e.up {
		e.up[i] = newBitset(n)
		e.up[i].set(i)
	}
	for _, u := range order { // order has ancestors before descendants
		for _, v := range e.covers[u] {
			e.up[v].or(e.up[u])
		}
	}
	// Unique top: exactly one element with no ancestors; unique bottom:
	// exactly one with no descendants.
	var tops, bottoms []int
	for i := 0; i < n; i++ {
		if len(e.covered[i]) == 0 {
			tops = append(tops, i)
		}
		if len(e.covers[i]) == 0 {
			bottoms = append(bottoms, i)
		}
	}
	if len(tops) != 1 {
		return fmt.Errorf("lattice %q: %d maximal elements %v (need exactly one top; wrap with AddDummyTop for semi-lattices)",
			e.name, len(tops), namesOf(e, tops))
	}
	if len(bottoms) != 1 {
		return fmt.Errorf("lattice %q: %d minimal elements %v (need exactly one bottom; wrap with AddDummyBottom for semi-lattices)",
			e.name, len(bottoms), namesOf(e, bottoms))
	}
	e.top, e.bottom = Level(tops[0]), Level(bottoms[0])

	// Height: longest downward path from top.
	depth := make([]int, n)
	for _, u := range order {
		for _, v := range e.covers[u] {
			if depth[u]+1 > depth[v] {
				depth[v] = depth[u] + 1
			}
		}
	}
	for _, d := range depth {
		if d > e.height {
			e.height = d
		}
	}

	// Lub/glb tables. For each pair, the common upper bounds are
	// up[i] ∩ up[j]; their least element u is the one every member
	// dominates, i.e. the unique u with (up[i] ∩ up[j]) ⊆ up[u].
	// Symmetrically for glb with down-sets (j ∈ down[i] iff i ∈ up[j]).
	down := make([]bitset, n)
	for i := 0; i < n; i++ {
		down[i] = newBitset(n)
	}
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			if e.up[j].has(i) { // i ≽ j? up[j] = {i : i ≽ j}; so i in up[j] means i ≽ j, i.e. j ∈ down[i].
				down[i].set(j)
			}
		}
	}
	e.lub = make([]Level, n*n)
	e.glb = make([]Level, n*n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			ub := e.up[i].and(e.up[j])
			u, ok := leastOf(ub, e.up)
			if !ok {
				return fmt.Errorf("lattice %q: elements %q and %q have no least upper bound",
					e.name, e.names[i], e.names[j])
			}
			lb := down[i].and(down[j])
			g, ok := greatestOf(lb, down)
			if !ok {
				return fmt.Errorf("lattice %q: elements %q and %q have no greatest lower bound",
					e.name, e.names[i], e.names[j])
			}
			e.lub[i*n+j], e.lub[j*n+i] = Level(u), Level(u)
			e.glb[i*n+j], e.glb[j*n+i] = Level(g), Level(g)
		}
	}
	return nil
}

// leastOf returns the unique element u of set such that every member of set
// dominates u, i.e. set ⊆ up[u].
func leastOf(set bitset, up []bitset) (int, bool) {
	for wi, w := range set {
		for ; w != 0; w &= w - 1 {
			u := wi*64 + bits.TrailingZeros64(w)
			if set.subset(up[u]) {
				return u, true
			}
		}
	}
	return 0, false
}

// greatestOf returns the unique element g of set such that g dominates
// every member, i.e. set ⊆ down[g].
func greatestOf(set bitset, down []bitset) (int, bool) {
	for wi, w := range set {
		for ; w != 0; w &= w - 1 {
			g := wi*64 + bits.TrailingZeros64(w)
			if set.subset(down[g]) {
				return g, true
			}
		}
	}
	return 0, false
}

func namesOf(e *Explicit, idx []int) []string {
	out := make([]string, len(idx))
	for i, j := range idx {
		out[i] = e.names[j]
	}
	return out
}

// Name implements Lattice.
func (e *Explicit) Name() string { return e.name }

// Size returns the number of elements.
func (e *Explicit) Size() int { return len(e.names) }

// Top implements Lattice.
func (e *Explicit) Top() Level { return e.top }

// Bottom implements Lattice.
func (e *Explicit) Bottom() Level { return e.bottom }

// Dominates implements Lattice via the closure bitsets.
func (e *Explicit) Dominates(a, b Level) bool {
	e.check(a)
	e.check(b)
	return e.up[b].has(int(a))
}

// Lub implements Lattice via the precomputed table.
func (e *Explicit) Lub(a, b Level) Level {
	e.check(a)
	e.check(b)
	return e.lub[int(a)*len(e.names)+int(b)]
}

// Glb implements Lattice via the precomputed table.
func (e *Explicit) Glb(a, b Level) Level {
	e.check(a)
	e.check(b)
	return e.glb[int(a)*len(e.names)+int(b)]
}

// Covers implements Lattice.
func (e *Explicit) Covers(a Level) []Level { e.check(a); return e.covers[a] }

// CoveredBy implements Lattice.
func (e *Explicit) CoveredBy(a Level) []Level { e.check(a); return e.covered[a] }

// Height implements Lattice.
func (e *Explicit) Height() int { return e.height }

// Contains implements Lattice.
func (e *Explicit) Contains(l Level) bool { return int(l) < len(e.names) }

// Elements implements Enumerable.
func (e *Explicit) Elements() []Level { return e.elems }

// FormatLevel implements Lattice.
func (e *Explicit) FormatLevel(l Level) string {
	e.check(l)
	return e.names[l]
}

// ParseLevel implements Lattice.
func (e *Explicit) ParseLevel(s string) (Level, error) {
	if i, ok := e.index[strings.TrimSpace(s)]; ok {
		return Level(i), nil
	}
	return 0, fmt.Errorf("lattice %q: unknown level %q", e.name, s)
}

func (e *Explicit) check(l Level) {
	if int(l) >= len(e.names) {
		panic(fmt.Sprintf("lattice %q: level handle %d out of range (foreign lattice?)", e.name, l))
	}
}

// NaiveOps wraps an Explicit lattice with operations that walk the Hasse
// diagram instead of consulting the closure bitsets and tables: dominance
// by depth-first search over covers, lub/glb by frontier search over common
// bounds. It answers identically to the wrapped lattice and exists solely
// as the "no encoding" comparison point for the §5 lattice-operation-cost
// experiments (E4).
type NaiveOps struct {
	*Explicit
}

// Name implements Lattice.
func (n NaiveOps) Name() string { return n.Explicit.Name() + " (naive ops)" }

// Dominates walks the Hasse diagram downward from a looking for b.
func (n NaiveOps) Dominates(a, b Level) bool {
	if a == b {
		return true
	}
	seen := make(map[Level]bool)
	stack := []Level{a}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range n.Explicit.Covers(u) {
			if v == b {
				return true
			}
			if !seen[v] {
				seen[v] = true
				stack = append(stack, v)
			}
		}
	}
	return false
}

// Lub finds the least common upper bound by enumerating the up-set of a via
// upward search and picking the minimal element that also dominates b.
func (n NaiveOps) Lub(a, b Level) Level {
	// Collect all common upper bounds.
	var common []Level
	seen := make(map[Level]bool)
	stack := []Level{a}
	seen[a] = true
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n.Dominates(u, b) {
			common = append(common, u)
		}
		for _, v := range n.Explicit.CoveredBy(u) {
			if !seen[v] {
				seen[v] = true
				stack = append(stack, v)
			}
		}
	}
	// The least element dominates none of the others strictly.
	best := common[0]
	for _, c := range common[1:] {
		if n.Dominates(best, c) {
			best = c
		}
	}
	return best
}

// Glb finds the greatest common lower bound symmetrically to Lub.
func (n NaiveOps) Glb(a, b Level) Level {
	var common []Level
	seen := make(map[Level]bool)
	stack := []Level{a}
	seen[a] = true
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n.Dominates(b, u) {
			common = append(common, u)
		}
		for _, v := range n.Explicit.Covers(u) {
			if !seen[v] {
				seen[v] = true
				stack = append(stack, v)
			}
		}
	}
	best := common[0]
	for _, c := range common[1:] {
		if n.Dominates(c, best) {
			best = c
		}
	}
	return best
}
