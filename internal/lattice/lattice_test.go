package lattice

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// allFixtures returns one instance of every enumerable lattice family for
// law checking.
func allFixtures(t *testing.T) map[string]Enumerable {
	t.Helper()
	ps := MustPowerset("cats3", "a", "b", "c")
	ch := MustChain("mil4", "U", "C", "S", "TS")
	return map[string]Enumerable{
		"figure1b": FigureOneB(),
		"chain":    ch,
		"powerset": ps,
		"product":  MustProduct("chain×cats", ch, ps),
		"diamond":  diamond(t),
	}
}

// diamond is the classic M2 lattice: ⊤ over two incomparable atoms over ⊥.
func diamond(t *testing.T) *Explicit {
	t.Helper()
	e, err := NewExplicit("diamond",
		[]string{"bot", "a", "b", "top"},
		map[string][]string{"top": {"a", "b"}, "a": {"bot"}, "b": {"bot"}})
	if err != nil {
		t.Fatalf("diamond: %v", err)
	}
	return e
}

func TestCheckAllFixtures(t *testing.T) {
	for name, l := range allFixtures(t) {
		if err := Check(l); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// TestLatticeLaws property-tests commutativity, associativity, absorption,
// idempotence, and the order-lub consistency law on random elements of
// every fixture.
func TestLatticeLaws(t *testing.T) {
	for name, l := range allFixtures(t) {
		elems := l.Elements()
		pick := func(rng *rand.Rand) Level { return elems[rng.Intn(len(elems))] }
		f := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			a, b, c := pick(rng), pick(rng), pick(rng)
			if l.Lub(a, b) != l.Lub(b, a) || l.Glb(a, b) != l.Glb(b, a) {
				return false // commutativity
			}
			if l.Lub(a, l.Lub(b, c)) != l.Lub(l.Lub(a, b), c) {
				return false // associativity
			}
			if l.Glb(a, l.Glb(b, c)) != l.Glb(l.Glb(a, b), c) {
				return false
			}
			if l.Lub(a, l.Glb(a, b)) != a || l.Glb(a, l.Lub(a, b)) != a {
				return false // absorption
			}
			if l.Lub(a, a) != a || l.Glb(a, a) != a {
				return false // idempotence
			}
			// a ≽ b iff lub(a,b)=a iff glb(a,b)=b.
			if l.Dominates(a, b) != (l.Lub(a, b) == a) {
				return false
			}
			if l.Dominates(a, b) != (l.Glb(a, b) == b) {
				return false
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestFigureOneBStructure(t *testing.T) {
	l := FigureOneB()
	lv := func(s string) Level {
		x, err := l.ParseLevel(s)
		if err != nil {
			t.Fatalf("ParseLevel(%s): %v", s, err)
		}
		return x
	}
	if got := l.FormatLevel(l.Top()); got != "L6" {
		t.Errorf("top = %s, want L6", got)
	}
	if got := l.FormatLevel(l.Bottom()); got != "1" {
		t.Errorf("bottom = %s, want 1", got)
	}
	if l.Height() != 4 {
		t.Errorf("height = %d, want 4", l.Height())
	}
	// The structural facts the Figure 2(b) trace depends on.
	if got := l.Glb(lv("L4"), lv("L5")); got != lv("L3") {
		t.Errorf("glb(L4,L5) = %s, want L3", l.FormatLevel(got))
	}
	if got := l.Lub(lv("L2"), lv("L3")); got != lv("L4") {
		t.Errorf("lub(L2,L3) = %s, want L4", l.FormatLevel(got))
	}
	if Comparable(l, lv("L2"), lv("L3")) {
		t.Error("L2 and L3 must be incomparable")
	}
	if Comparable(l, lv("L2"), lv("L5")) {
		t.Error("L2 and L5 must be incomparable")
	}
	if Comparable(l, lv("L4"), lv("L5")) {
		t.Error("L4 and L5 must be incomparable")
	}
	if !l.Dominates(lv("L5"), lv("L3")) || !l.Dominates(lv("L3"), lv("L1")) {
		t.Error("expected L5 ≽ L3 ≽ L1")
	}
	// Descent order under L4 must try L2 before L3 (paper's left-to-right).
	cov := l.Covers(lv("L4"))
	if len(cov) != 2 || cov[0] != lv("L2") || cov[1] != lv("L3") {
		t.Errorf("Covers(L4) = %v, want [L2 L3]", cov)
	}
	if b := Branching(l); b != 2 {
		t.Errorf("branching = %d, want 2", b)
	}
	if m := PathSumM(l); m <= 0 || m > Branching(l)*l.Height()+2 {
		t.Errorf("PathSumM = %d out of plausible range", m)
	}
}

func TestFigureOneA(t *testing.T) {
	m := FigureOneA()
	top := m.MustLevel("TS", "Army", "Nuclear")
	if m.Top() != top {
		t.Errorf("top = %s", m.FormatLevel(m.Top()))
	}
	if m.Bottom() != m.MustLevel("S") {
		t.Errorf("bottom = %s", m.FormatLevel(m.Bottom()))
	}
	if m.Count() != 8 {
		t.Errorf("count = %d, want 8", m.Count())
	}
	sArmy := m.MustLevel("S", "Army")
	tsNuc := m.MustLevel("TS", "Nuclear")
	if m.Dominates(sArmy, tsNuc) || m.Dominates(tsNuc, sArmy) {
		t.Error("<S,{Army}> and <TS,{Nuclear}> must be incomparable")
	}
	if got := m.Lub(sArmy, tsNuc); got != top {
		t.Errorf("lub = %s, want top", m.FormatLevel(got))
	}
	if got := m.Glb(sArmy, tsNuc); got != m.MustLevel("S") {
		t.Errorf("glb = %s, want <S,{}>", m.FormatLevel(got))
	}
	if m.Height() != 3 {
		t.Errorf("height = %d, want 3", m.Height())
	}
}

func TestMLSCoversRoundTrip(t *testing.T) {
	m := MustMLS("m", []string{"U", "C", "S"}, []string{"x", "y", "z"})
	a := m.MustLevel("C", "x", "z")
	covers := m.Covers(a)
	// Expect: remove x, remove z, drop classification: 3 covers.
	if len(covers) != 3 {
		t.Fatalf("covers = %d, want 3", len(covers))
	}
	for _, c := range covers {
		if !StrictlyDominates(m, a, c) {
			t.Errorf("cover %s not strictly below %s", m.FormatLevel(c), m.FormatLevel(a))
		}
		// Immediacy: nothing strictly between.
		for _, mid := range m.CoveredBy(c) {
			if mid != a && StrictlyDominates(m, a, mid) {
				t.Errorf("%s lies between %s and its cover %s",
					m.FormatLevel(mid), m.FormatLevel(a), m.FormatLevel(c))
			}
		}
	}
	up := m.CoveredBy(a)
	if len(up) != 2 { // add y, raise classification
		t.Fatalf("coveredBy = %d, want 2", len(up))
	}
}

// TestMLSLawsRandom property-tests the MLS lattice laws on random packed
// levels (the lattice is too large to enumerate).
func TestMLSLawsRandom(t *testing.T) {
	m := MustMLS("big", []string{"U", "C", "S", "TS"},
		[]string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j"})
	randLevel := func(rng *rand.Rand) Level {
		return Level(uint64(rng.Intn(4))<<mlsLevelShift | uint64(rng.Intn(1<<10)))
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b, c := randLevel(rng), randLevel(rng), randLevel(rng)
		lub, glb := m.Lub(a, b), m.Glb(a, b)
		if !m.Dominates(lub, a) || !m.Dominates(lub, b) {
			return false
		}
		if !m.Dominates(a, glb) || !m.Dominates(b, glb) {
			return false
		}
		// lub is least: any common dominator of a and b dominates lub.
		if m.Dominates(c, a) && m.Dominates(c, b) && !m.Dominates(c, lub) {
			return false
		}
		if m.Dominates(a, c) && m.Dominates(b, c) && !m.Dominates(glb, c) {
			return false
		}
		return m.Lub(a, m.Lub(b, c)) == m.Lub(m.Lub(a, b), c) &&
			m.Glb(a, m.Glb(b, c)) == m.Glb(m.Glb(a, b), c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestMinComplement checks the footnote-4 closed form on MLS, Powerset and
// Chain against the defining property: MinComplement(o,r) is minimal among
// levels l with lub(l,o) ≽ r.
func TestMinComplement(t *testing.T) {
	type cm interface {
		Lattice
		MinComplement(others, rhs Level) Level
	}
	m := MustMLS("m", []string{"U", "C", "S"}, []string{"x", "y"})
	lattices := []cm{
		m,
		MustPowerset("p", "x", "y", "z"),
		MustChain("c", "U", "C", "S", "TS"),
	}
	// For enumerable ones check exhaustively; for MLS sample.
	for _, l := range lattices {
		var elems []Level
		if en, ok := l.(Enumerable); ok {
			elems = en.Elements()
		} else {
			for cl := uint64(0); cl < 3; cl++ {
				for cat := uint64(0); cat < 4; cat++ {
					elems = append(elems, Level(cl<<mlsLevelShift|cat))
				}
			}
		}
		for _, o := range elems {
			for _, r := range elems {
				got := l.MinComplement(o, r)
				if !l.Dominates(l.Lub(got, o), r) {
					t.Fatalf("%s: MinComplement(%s,%s)=%s does not satisfy",
						l.Name(), l.FormatLevel(o), l.FormatLevel(r), l.FormatLevel(got))
				}
				for _, cand := range elems {
					if l.Dominates(l.Lub(cand, o), r) && StrictlyDominates(l, got, cand) {
						t.Fatalf("%s: MinComplement(%s,%s)=%s not minimal; %s works",
							l.Name(), l.FormatLevel(o), l.FormatLevel(r),
							l.FormatLevel(got), l.FormatLevel(cand))
					}
				}
			}
		}
	}
}

func TestChainBasics(t *testing.T) {
	c := MustChain("mil", "U", "C", "S", "TS")
	if c.Height() != 3 || c.Size() != 4 {
		t.Fatalf("height=%d size=%d", c.Height(), c.Size())
	}
	u, _ := c.ParseLevel("U")
	ts, _ := c.ParseLevel("TS")
	if !c.Dominates(ts, u) || c.Dominates(u, ts) {
		t.Error("chain order wrong")
	}
	if len(c.Covers(u)) != 0 || len(c.CoveredBy(ts)) != 0 {
		t.Error("extremes must have no covers beyond the chain")
	}
	if _, err := c.ParseLevel("nope"); err == nil {
		t.Error("ParseLevel accepted unknown name")
	}
	if _, err := NewChain("dup", "a", "a"); err == nil {
		t.Error("NewChain accepted duplicate level")
	}
	if _, err := NewChain("empty"); err == nil {
		t.Error("NewChain accepted zero levels")
	}
}

func TestPowersetBasics(t *testing.T) {
	p := MustPowerset("p", "a", "b", "c")
	ab, err := p.LevelOf("a", "b")
	if err != nil {
		t.Fatal(err)
	}
	if got := p.FormatLevel(ab); got != "{a,b}" {
		t.Errorf("format = %q", got)
	}
	back, err := p.ParseLevel("{a, b}")
	if err != nil || back != ab {
		t.Errorf("parse round-trip: %v %v", back, err)
	}
	empty, err := p.ParseLevel("{}")
	if err != nil || empty != p.Bottom() {
		t.Errorf("empty set parse: %v %v", empty, err)
	}
	if _, err := p.LevelOf("zz"); err == nil {
		t.Error("LevelOf accepted unknown category")
	}
	if _, err := NewPowerset("big", make([]string, 21)...); err == nil {
		t.Error("NewPowerset accepted oversized universe")
	}
}

func TestExplicitErrors(t *testing.T) {
	cases := []struct {
		name   string
		elems  []string
		covers map[string][]string
	}{
		{"no elements", nil, nil},
		{"duplicate", []string{"a", "a"}, nil},
		{"unknown source", []string{"a"}, map[string][]string{"b": {"a"}}},
		{"unknown target", []string{"a"}, map[string][]string{"a": {"b"}}},
		{"self cover", []string{"a", "b"}, map[string][]string{"a": {"a"}}},
		{"cycle", []string{"a", "b"}, map[string][]string{"a": {"b"}, "b": {"a"}}},
		{"two tops", []string{"a", "b", "c"}, map[string][]string{"a": {"c"}, "b": {"c"}}},
		{"two bottoms", []string{"a", "b", "c"}, map[string][]string{"a": {"b", "c"}}},
		// a and b share two incomparable minimal upper bounds x and y, so
		// lub(a,b) does not exist even though upper bounds do.
		{"no lub", []string{"t", "x", "y", "a", "b", "bot"},
			map[string][]string{
				"t": {"x", "y"},
				"x": {"a", "b"}, "y": {"a", "b"},
				"a": {"bot"}, "b": {"bot"},
			}},
	}
	for _, tc := range cases {
		if _, err := NewExplicit(tc.name, tc.elems, tc.covers); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestNaiveOpsAgree(t *testing.T) {
	for name, l := range allFixtures(t) {
		e, ok := l.(*Explicit)
		if !ok {
			continue
		}
		n := NaiveOps{e}
		for _, a := range e.Elements() {
			for _, b := range e.Elements() {
				if n.Dominates(a, b) != e.Dominates(a, b) {
					t.Fatalf("%s: naive Dominates(%s,%s) disagrees", name,
						e.FormatLevel(a), e.FormatLevel(b))
				}
				if n.Lub(a, b) != e.Lub(a, b) {
					t.Fatalf("%s: naive Lub(%s,%s)=%s want %s", name,
						e.FormatLevel(a), e.FormatLevel(b),
						e.FormatLevel(n.Lub(a, b)), e.FormatLevel(e.Lub(a, b)))
				}
				if n.Glb(a, b) != e.Glb(a, b) {
					t.Fatalf("%s: naive Glb(%s,%s) disagrees", name,
						e.FormatLevel(a), e.FormatLevel(b))
				}
			}
		}
	}
}

func TestCoversAbove(t *testing.T) {
	l := FigureOneB()
	lv := func(s string) Level { x, _ := l.ParseLevel(s); return x }
	got := CoversAbove(l, lv("L6"), lv("L4"))
	if len(got) != 1 || got[0] != lv("L4") {
		t.Errorf("CoversAbove(L6,L4) = %v", got)
	}
	got = CoversAbove(l, lv("L4"), l.Bottom())
	if len(got) != 2 {
		t.Errorf("CoversAbove(L4,⊥) = %v, want both covers", got)
	}
	if got := CoversAbove(l, lv("L1"), lv("L1")); len(got) != 0 {
		t.Errorf("CoversAbove(L1,L1) = %v, want empty", got)
	}
}

func TestLubAllGlbAll(t *testing.T) {
	l := FigureOneB()
	lv := func(s string) Level { x, _ := l.ParseLevel(s); return x }
	if got := LubAll(l); got != l.Bottom() {
		t.Errorf("LubAll() = %s, want bottom", l.FormatLevel(got))
	}
	if got := GlbAll(l); got != l.Top() {
		t.Errorf("GlbAll() = %s, want top", l.FormatLevel(got))
	}
	if got := LubAll(l, lv("L2"), lv("L3"), lv("L1")); got != lv("L4") {
		t.Errorf("LubAll(L2,L3,L1) = %s, want L4", l.FormatLevel(got))
	}
	if got := GlbAll(l, lv("L4"), lv("L5")); got != lv("L3") {
		t.Errorf("GlbAll(L4,L5) = %s, want L3", l.FormatLevel(got))
	}
}

func TestChainDown(t *testing.T) {
	l := FigureOneB()
	chain := ChainDown(l, l.Top())
	if chain[0] != l.Top() || chain[len(chain)-1] != l.Bottom() {
		t.Fatalf("ChainDown endpoints wrong: %v", chain)
	}
	for i := 1; i < len(chain); i++ {
		if !StrictlyDominates(l, chain[i-1], chain[i]) {
			t.Fatalf("chain step %d not descending", i)
		}
	}
}

func TestCompleteToLattice(t *testing.T) {
	// Two maximal elements, one minimal: needs a dummy top only.
	l, comp, err := CompleteToLattice("semi",
		[]string{"a", "b", "z"},
		map[string][]string{"a": {"z"}, "b": {"z"}})
	if err != nil {
		t.Fatal(err)
	}
	if !comp.AddedTop || comp.AddedBottom {
		t.Errorf("completion = %+v, want top only", comp)
	}
	if !IsDummy(l, l.Top()) {
		t.Error("top should be the dummy")
	}
	if IsDummy(l, l.Bottom()) {
		t.Error("bottom should be real")
	}
	if err := Check(l); err != nil {
		t.Errorf("completed lattice invalid: %v", err)
	}

	// Missing both extremes.
	l2, comp2, err := CompleteToLattice("semi2",
		[]string{"a", "b"}, map[string][]string{})
	if err != nil {
		t.Fatal(err)
	}
	if !comp2.AddedTop || !comp2.AddedBottom {
		t.Errorf("completion = %+v, want both", comp2)
	}
	if err := Check(l2); err != nil {
		t.Errorf("completed lattice invalid: %v", err)
	}

	// Reserved name rejected.
	if _, _, err := CompleteToLattice("bad", []string{DummyTopName}, nil); err == nil {
		t.Error("reserved name accepted")
	}
}

func TestParseFormats(t *testing.T) {
	chainSrc := `
# military chain
chain mil
levels U C S TS
`
	l, err := ParseString(chainSrc)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := l.(*Chain); !ok || l.Height() != 3 {
		t.Errorf("chain parse gave %T height %d", l, l.Height())
	}

	mlsSrc := `
mls fig1a
levels S TS
categories Army Nuclear
`
	l, err = ParseString(mlsSrc)
	if err != nil {
		t.Fatal(err)
	}
	if m, ok := l.(*MLS); !ok || m.Count() != 8 {
		t.Errorf("mls parse gave %T", l)
	}

	expSrc := `
explicit fig1b
elements 1 L1 L2 L3 L4 L5 L6
cover L6 L5 L4
cover L5 L3
cover L4 L2 L3
cover L3 L1
cover L2 L1
cover L1 1
`
	l, err = ParseString(expSrc)
	if err != nil {
		t.Fatal(err)
	}
	want := FigureOneB()
	e := l.(*Explicit)
	for _, a := range want.Elements() {
		for _, b := range want.Elements() {
			pa, _ := e.ParseLevel(want.FormatLevel(a))
			pb, _ := e.ParseLevel(want.FormatLevel(b))
			if e.Dominates(pa, pb) != want.Dominates(a, b) {
				t.Fatalf("parsed fig1b disagrees on %s ≽ %s",
					want.FormatLevel(a), want.FormatLevel(b))
			}
		}
	}

	semiSrc := `
semilattice s
elements a b z
cover a z
cover b z
`
	l, err = ParseString(semiSrc)
	if err != nil {
		t.Fatal(err)
	}
	if l.FormatLevel(l.Top()) != DummyTopName {
		t.Errorf("semilattice parse: top = %s", l.FormatLevel(l.Top()))
	}

	for _, bad := range []string{
		"", "bogus x", "chain a\nchain b\nlevels x",
		"explicit e\nelements a\ncover a",
		"chain", "mls m\ncategories x",
	} {
		if _, err := ParseString(bad); err == nil {
			t.Errorf("ParseString(%q) accepted invalid input", bad)
		}
	}
}

func TestWriteDOT(t *testing.T) {
	var sb strings.Builder
	if err := WriteDOT(&sb, FigureOneB()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"digraph", `"L6" -> "L5"`, `"L1" -> "1"`} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q", want)
		}
	}
}

func TestProductSplitPack(t *testing.T) {
	ch := MustChain("c", "lo", "hi")
	ps := MustPowerset("p", "x", "y")
	pr := MustProduct("c×p", ch, ps)
	hi, _ := ch.ParseLevel("hi")
	xy, _ := ps.LevelOf("x", "y")
	lvl, err := pr.ParseLevel("(hi,{x,y})")
	if err != nil {
		t.Fatal(err)
	}
	a, b := pr.Split(lvl)
	if a != hi || b != xy {
		t.Errorf("split = %v,%v", a, b)
	}
	if lvl != pr.Top() {
		t.Error("(hi,{x,y}) should be top")
	}
	if got := pr.FormatLevel(pr.Bottom()); got != "(lo,{})" {
		t.Errorf("bottom format = %q", got)
	}
	if len(pr.Covers(pr.Top())) != 3 {
		t.Errorf("top covers = %v", pr.Covers(pr.Top()))
	}
}

func TestForeignHandlePanics(t *testing.T) {
	l := FigureOneB()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on foreign handle")
		}
	}()
	l.Dominates(Level(999), l.Top())
}
