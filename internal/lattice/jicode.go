package lattice

import (
	"fmt"
	"math/bits"
)

// JICode is a compact lattice encoding in the style of Aït-Kaci, Boyer,
// Lincoln and Nasr ("Efficient implementation of lattice operations",
// TOPLAS 1989 — reference [1] of the paper's §5): every element is coded
// by the set of join-irreducible elements it dominates, packed into a few
// machine words. Then
//
//	a ≽ b          ⇔  code(b) ⊆ code(a)
//	code(a ⊓ b)    =  code(a) ∩ code(b)      (after normalization)
//	code(a ⊔ b)    =  closure(code(a) ∪ code(b))
//
// Because only join-irreducible elements (those with exactly one
// immediate descendant) carry a bit, the code width is usually much
// smaller than the full |L|-bit closure rows the Explicit lattice keeps —
// the space/time trade-off §5 discusses. Lub and glb are answered through
// a lookup table from normalized code to element, so both remain
// effectively constant-time.
type JICode struct {
	base   *Explicit
	irr    []Level // the join-irreducible elements, in index order
	bitOf  map[Level]int
	codes  []jiBits // codes[element]
	decode map[string]Level
	words  int
}

type jiBits []uint64

func (b jiBits) subset(o jiBits) bool {
	for i := range b {
		if b[i]&^o[i] != 0 {
			return false
		}
	}
	return true
}

func (b jiBits) key() string { // map key for decode lookups
	buf := make([]byte, 0, len(b)*8)
	for _, w := range b {
		for s := 0; s < 64; s += 8 {
			buf = append(buf, byte(w>>uint(s)))
		}
	}
	return string(buf)
}

// NewJICode builds the join-irreducible encoding of an explicit lattice.
func NewJICode(base *Explicit) (*JICode, error) {
	elems := base.Elements()
	j := &JICode{base: base, bitOf: make(map[Level]int)}
	// Join-irreducible: not the bottom, and covering exactly one element.
	for _, e := range elems {
		if e != base.Bottom() && len(base.Covers(e)) == 1 {
			j.bitOf[e] = len(j.irr)
			j.irr = append(j.irr, e)
		}
	}
	// Degenerate but legal: a one-element lattice has no irreducibles.
	j.words = (len(j.irr) + 63) / 64
	if j.words == 0 {
		j.words = 1
	}
	j.codes = make([]jiBits, len(elems))
	j.decode = make(map[string]Level, len(elems))
	for _, e := range elems {
		code := make(jiBits, j.words)
		for _, ir := range j.irr {
			if base.Dominates(e, ir) {
				bit := j.bitOf[ir]
				code[bit/64] |= 1 << (uint(bit) % 64)
			}
		}
		j.codes[e] = code
		key := code.key()
		if prev, dup := j.decode[key]; dup {
			// Cannot happen in a lattice: every element is the join of
			// the irreducibles below it, so codes are unique.
			return nil, fmt.Errorf("lattice: elements %q and %q share a JI code",
				base.FormatLevel(prev), base.FormatLevel(e))
		}
		j.decode[key] = e
	}
	return j, nil
}

// MustJICode is NewJICode that panics on error.
func MustJICode(base *Explicit) *JICode {
	j, err := NewJICode(base)
	if err != nil {
		panic(err)
	}
	return j
}

// NumIrreducibles returns the code width in bits.
func (j *JICode) NumIrreducibles() int { return len(j.irr) }

// CodeWords returns the number of 64-bit words per element code.
func (j *JICode) CodeWords() int { return j.words }

// SpaceBits returns the total encoding size in bits (elements × words ×
// 64), for comparison with the |L|² closure representation.
func (j *JICode) SpaceBits() int { return len(j.codes) * j.words * 64 }

// Dominates answers a ≽ b via subset testing on the codes.
func (j *JICode) Dominates(a, b Level) bool {
	return j.codes[b].subset(j.codes[a])
}

// Lub returns a ⊔ b: the union of the codes, closed upward to the nearest
// actual element code. The closure walk is bounded by the lattice height.
func (j *JICode) Lub(a, b Level) Level {
	u := make(jiBits, j.words)
	ca, cb := j.codes[a], j.codes[b]
	for i := range u {
		u[i] = ca[i] | cb[i]
	}
	if e, ok := j.decode[u.key()]; ok {
		return e
	}
	// The union is not itself a code (non-distributive join): the lub is
	// the least element whose code contains the union. Walk down from ⊤
	// greedily.
	cur := j.base.Top()
	for {
		moved := false
		for _, c := range j.base.Covers(cur) {
			if u.subset(j.codes[c]) {
				cur = c
				moved = true
				break
			}
		}
		if !moved {
			return cur
		}
	}
}

// Glb returns a ⊓ b via the code intersection, which — unlike the union
// in Lub — is always exactly the meet's code: a join-irreducible lies
// below both a and b iff it lies below a ⊓ b, so
// code(a) ∩ code(b) = code(a ⊓ b) in every lattice and the decode lookup
// cannot miss.
func (j *JICode) Glb(a, b Level) Level {
	u := make(jiBits, j.words)
	ca, cb := j.codes[a], j.codes[b]
	for i := range u {
		u[i] = ca[i] & cb[i]
	}
	e, ok := j.decode[u.key()]
	if !ok {
		panic(fmt.Sprintf("lattice: JI glb code missing for %s ⊓ %s (not a lattice?)",
			j.base.FormatLevel(a), j.base.FormatLevel(b)))
	}
	return e
}

// Code returns a copy of an element's code bits, mostly for inspection
// and tests.
func (j *JICode) Code(a Level) []uint64 {
	out := make([]uint64, j.words)
	copy(out, j.codes[a])
	return out
}

// PopCount returns the number of irreducibles below a — the rank used in
// some encoding analyses.
func (j *JICode) PopCount(a Level) int {
	n := 0
	for _, w := range j.codes[a] {
		n += bits.OnesCount64(w)
	}
	return n
}

// JIOps adapts a JICode into a full Lattice: order operations go through
// the join-irreducible codes while structural queries (covers, parsing,
// element enumeration) delegate to the underlying explicit lattice. It
// lets the solver run entirely on the compact encoding, for the E4
// end-to-end comparison.
type JIOps struct {
	*Explicit
	JI *JICode
}

var _ Enumerable = JIOps{}

// NewJIOps builds the adapter (computing the encoding).
func NewJIOps(base *Explicit) (JIOps, error) {
	ji, err := NewJICode(base)
	if err != nil {
		return JIOps{}, err
	}
	return JIOps{Explicit: base, JI: ji}, nil
}

// Name implements Lattice.
func (o JIOps) Name() string { return o.Explicit.Name() + " (JI code ops)" }

// Dominates implements Lattice via the code subset test.
func (o JIOps) Dominates(a, b Level) bool { return o.JI.Dominates(a, b) }

// Lub implements Lattice via the code union.
func (o JIOps) Lub(a, b Level) Level { return o.JI.Lub(a, b) }

// Glb implements Lattice via the code intersection.
func (o JIOps) Glb(a, b Level) Level { return o.JI.Glb(a, b) }
