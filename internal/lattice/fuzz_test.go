package lattice

import (
	"strings"
	"testing"
)

// FuzzParse checks that the lattice-description parser never panics and
// that anything it accepts is a genuine lattice (validated with Check for
// enumerable results).
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"chain c\nlevels a b c",
		"mls m\nlevels U TS\ncategories X Y",
		"explicit e\nelements t b\ncover t b",
		"semilattice s\nelements a b",
		"explicit e\nelements a\ncover a a",
		"chain c\nlevels a a",
		"# only a comment",
		"explicit e\nelements t m1 m2 b\ncover t m1 m2\ncover m1 b\ncover m2 b",
		"cover x y",
		"chain c\nchain d",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		l, err := Parse(strings.NewReader(input))
		if err != nil {
			return
		}
		// Accepted: the basic laws must hold on a sample, and Check must
		// pass for small enumerable lattices.
		top, bot := l.Top(), l.Bottom()
		if !l.Dominates(top, bot) {
			t.Fatalf("accepted lattice where ⊤ does not dominate ⊥ (input %q)", input)
		}
		if l.Lub(top, bot) != top || l.Glb(top, bot) != bot {
			t.Fatalf("extreme lub/glb wrong (input %q)", input)
		}
		if en, ok := l.(Enumerable); ok && len(en.Elements()) <= 32 {
			if err := Check(en); err != nil {
				t.Fatalf("accepted invalid lattice from %q: %v", input, err)
			}
		}
	})
}

// FuzzMLSParseLevel checks level-literal parsing against a fixed MLS
// lattice.
func FuzzMLSParseLevel(f *testing.F) {
	for _, seed := range []string{
		"<TS,{Army}>", "<S,{}>", "S", "<TS,{Army,Nuclear}>",
		"<,{}>", "<TS,{Nope}>", "<<>>", "",
	} {
		f.Add(seed)
	}
	m := FigureOneA()
	f.Fuzz(func(t *testing.T, input string) {
		l, err := m.ParseLevel(input)
		if err != nil {
			return
		}
		if !m.Contains(l) {
			t.Fatalf("parsed level outside lattice from %q", input)
		}
		// Round-trip through the canonical form.
		back, err := m.ParseLevel(m.FormatLevel(l))
		if err != nil || back != l {
			t.Fatalf("canonical round-trip failed for %q: %v", input, err)
		}
	})
}
