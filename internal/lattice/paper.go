package lattice

// This file provides the two example security lattices of Figure 1 of the
// paper as ready-made fixtures. They are used throughout the tests, the
// Figure 2 reproduction, and the examples.

// FigureOneA returns the compartmented lattice of Figure 1(a): two
// classification levels S < TS and two categories Army and Nuclear, giving
// the eight access classes from <S,{}> up to <TS,{Army,Nuclear}>.
func FigureOneA() *MLS {
	return MustMLS("figure-1a", []string{"S", "TS"}, []string{"Army", "Nuclear"})
}

// FigureOneB returns the seven-element lattice of Figure 1(b), which is
// also the lattice the worked example of Figure 2 runs on. Its Hasse
// diagram (top to bottom, with cover lists in the paper's left-to-right
// order) is:
//
//	   L6
//	  /  \
//	L5    L4
//	 \   /  \
//	  L3     L2
//	   \    /
//	    L1
//	     |
//	     1
//
// i.e. L6 covers {L5,L4}; L5 covers {L3}; L4 covers {L2,L3}; both L2 and
// L3 cover {L1}; L1 covers the bottom element 1. This structure is
// reconstructed from the constraints and the execution trace in Figure
// 2(b): glb(L4,L5)=L3, L2 and L3 incomparable, L2 and L5 incomparable, and
// the descent orders try L2 before L3 under L4.
func FigureOneB() *Explicit {
	e, err := NewExplicit("figure-1b",
		[]string{"1", "L1", "L2", "L3", "L4", "L5", "L6"},
		map[string][]string{
			"L6": {"L5", "L4"},
			"L5": {"L3"},
			"L4": {"L2", "L3"},
			"L3": {"L1"},
			"L2": {"L1"},
			"L1": {"1"},
		})
	if err != nil {
		panic("lattice: FigureOneB fixture invalid: " + err.Error())
	}
	return e
}
