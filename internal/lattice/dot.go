package lattice

import (
	"fmt"
	"io"
	"strings"
)

// WriteDOT renders the Hasse diagram of an enumerable lattice in Graphviz
// DOT format, top-ranked first, with an edge from each element to every
// element it covers. The output is deterministic.
func WriteDOT(w io.Writer, l Enumerable) error {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", l.Name())
	b.WriteString("  rankdir=TB;\n  node [shape=box, fontname=\"Helvetica\"];\n")
	for _, e := range l.Elements() {
		label := l.FormatLevel(e)
		attrs := ""
		switch e {
		case l.Top():
			attrs = ", style=filled, fillcolor=\"#ffdddd\""
		case l.Bottom():
			attrs = ", style=filled, fillcolor=\"#ddddff\""
		}
		fmt.Fprintf(&b, "  %q [label=%q%s];\n", label, label, attrs)
	}
	for _, e := range l.Elements() {
		for _, c := range l.Covers(e) {
			fmt.Fprintf(&b, "  %q -> %q;\n", l.FormatLevel(e), l.FormatLevel(c))
		}
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
