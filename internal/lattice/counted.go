package lattice

import "minup/internal/fault"

// OpCounts tallies the primitive lattice operations performed through a
// Counted wrapper — the encoding-layer cost the complexity analysis of §5
// charges per constraint check. The counts are plain integers owned by one
// solver session; they are not safe for concurrent mutation.
type OpCounts struct {
	Lub       uint64 // least-upper-bound operations
	Glb       uint64 // greatest-lower-bound operations
	Dominates uint64 // dominance tests
	Covers    uint64 // immediate-descendant expansions
}

// Total returns the sum of all operation counts.
func (c OpCounts) Total() uint64 { return c.Lub + c.Glb + c.Dominates + c.Covers }

// Counted forwards every Lattice operation to L, counting lub/glb/
// dominance/covers calls into C. It is the op-counter hook behind the
// solver's zero-cost-when-nil guarantee: Instrument returns the lattice
// unchanged when no counter block is supplied, so uninstrumented solves
// never pay the forwarding indirection. A Counted value serves one
// goroutine; concurrent solves each wrap the shared base lattice with their
// own counter block.
type Counted struct {
	L Lattice
	C *OpCounts
	// F, when non-nil, arms the wrapper's fault points ("lattice.lub",
	// "lattice.glb", "lattice.dominates", "lattice.covers") for chaos
	// testing: delay rules simulate slow lattice encodings, panic rules a
	// buggy one. Cancel rules panic (these call sites return values, not
	// errors); the solver's recovery guard converts that to a typed
	// internal error. Nil costs one comparison per operation, and the
	// wrapper itself is only installed when counting or injection is
	// requested, so the uninstrumented solve path is untouched.
	F *fault.Injector
}

// Instrument wraps l so its operations count into c. When c is nil the
// lattice is returned unchanged — the zero-cost path.
func Instrument(l Lattice, c *OpCounts) Lattice {
	if c == nil {
		return l
	}
	return &Counted{L: l, C: c}
}

// Name returns the underlying lattice's name.
func (w *Counted) Name() string { return w.L.Name() }

// Top returns ⊤ of the underlying lattice.
func (w *Counted) Top() Level { return w.L.Top() }

// Bottom returns ⊥ of the underlying lattice.
func (w *Counted) Bottom() Level { return w.L.Bottom() }

// Dominates counts and forwards a ≽ b.
func (w *Counted) Dominates(a, b Level) bool {
	w.C.Dominates++
	if w.F != nil {
		w.F.HitValue("lattice.dominates")
	}
	return w.L.Dominates(a, b)
}

// Lub counts and forwards a ⊔ b.
func (w *Counted) Lub(a, b Level) Level {
	w.C.Lub++
	if w.F != nil {
		w.F.HitValue("lattice.lub")
	}
	return w.L.Lub(a, b)
}

// Glb counts and forwards a ⊓ b.
func (w *Counted) Glb(a, b Level) Level {
	w.C.Glb++
	if w.F != nil {
		w.F.HitValue("lattice.glb")
	}
	return w.L.Glb(a, b)
}

// Covers counts and forwards the immediate-descendant expansion.
func (w *Counted) Covers(a Level) []Level {
	w.C.Covers++
	if w.F != nil {
		w.F.HitValue("lattice.covers")
	}
	return w.L.Covers(a)
}

// CoveredBy forwards the immediate-ancestor expansion (uncounted: it is
// not on any solver hot path).
func (w *Counted) CoveredBy(a Level) []Level { return w.L.CoveredBy(a) }

// Height forwards to the underlying lattice.
func (w *Counted) Height() int { return w.L.Height() }

// Contains forwards to the underlying lattice.
func (w *Counted) Contains(l Level) bool { return w.L.Contains(l) }

// FormatLevel forwards to the underlying lattice.
func (w *Counted) FormatLevel(l Level) string { return w.L.FormatLevel(l) }

// ParseLevel forwards to the underlying lattice.
func (w *Counted) ParseLevel(s string) (Level, error) { return w.L.ParseLevel(s) }
