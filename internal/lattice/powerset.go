package lattice

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
)

// maxPowersetUniverse bounds the universe size of an enumerable powerset
// lattice (2^20 elements is already a million-element lattice).
const maxPowersetUniverse = 20

// Powerset is the lattice of subsets of a small named universe, ordered by
// inclusion: lub is union, glb is intersection, ⊤ the full set, ⊥ the empty
// set. A Level is the subset's bitmask. Powerset lattices model pure
// category/compartment structures (an MLS lattice with a single
// classification level).
type Powerset struct {
	name     string
	universe []string // category names, bit i ↔ universe[i]
	index    map[string]uint
	elems    []Level // lazily nil until Elements is first called? built eagerly
}

var _ Enumerable = (*Powerset)(nil)
var _ ComplementMinimizer = (*Powerset)(nil)

// NewPowerset builds the subset lattice over the given category names.
// At most 20 categories are allowed so the lattice stays enumerable; use
// MLS for the full 64-category military form (which is not enumerable).
func NewPowerset(name string, categories ...string) (*Powerset, error) {
	if len(categories) == 0 {
		return nil, fmt.Errorf("powerset %q: empty universe", name)
	}
	if len(categories) > maxPowersetUniverse {
		return nil, fmt.Errorf("powerset %q: %d categories exceeds limit %d (use MLS)",
			name, len(categories), maxPowersetUniverse)
	}
	p := &Powerset{
		name:     name,
		universe: append([]string(nil), categories...),
		index:    make(map[string]uint, len(categories)),
	}
	for i, c := range categories {
		if c == "" {
			return nil, fmt.Errorf("powerset %q: empty category name", name)
		}
		if strings.ContainsAny(c, "{},") {
			return nil, fmt.Errorf("powerset %q: category %q contains a reserved character", name, c)
		}
		if _, dup := p.index[c]; dup {
			return nil, fmt.Errorf("powerset %q: duplicate category %q", name, c)
		}
		p.index[c] = uint(i)
	}
	p.elems = make([]Level, 1<<len(categories))
	for i := range p.elems {
		p.elems[i] = Level(i)
	}
	return p, nil
}

// MustPowerset is NewPowerset that panics on error, for static fixtures.
func MustPowerset(name string, categories ...string) *Powerset {
	p, err := NewPowerset(name, categories...)
	if err != nil {
		panic(err)
	}
	return p
}

// LevelOf returns the level for a set of category names.
func (p *Powerset) LevelOf(categories ...string) (Level, error) {
	var mask uint64
	for _, c := range categories {
		i, ok := p.index[c]
		if !ok {
			return 0, fmt.Errorf("powerset %q: unknown category %q", p.name, c)
		}
		mask |= 1 << i
	}
	return Level(mask), nil
}

// Name implements Lattice.
func (p *Powerset) Name() string { return p.name }

// Top implements Lattice.
func (p *Powerset) Top() Level { return Level(uint64(1)<<len(p.universe) - 1) }

// Bottom implements Lattice.
func (p *Powerset) Bottom() Level { return 0 }

// Dominates implements Lattice: superset inclusion.
func (p *Powerset) Dominates(a, b Level) bool {
	p.check(a)
	p.check(b)
	return uint64(b)&^uint64(a) == 0
}

// Lub implements Lattice: union.
func (p *Powerset) Lub(a, b Level) Level { p.check(a); p.check(b); return a | b }

// Glb implements Lattice: intersection.
func (p *Powerset) Glb(a, b Level) Level { p.check(a); p.check(b); return a & b }

// Covers implements Lattice: remove one category, lowest bit first.
func (p *Powerset) Covers(a Level) []Level {
	p.check(a)
	m := uint64(a)
	out := make([]Level, 0, bits.OnesCount64(m))
	for w := m; w != 0; w &= w - 1 {
		bit := w & -w
		out = append(out, Level(m&^bit))
	}
	return out
}

// CoveredBy implements Lattice: add one missing category, lowest bit first.
func (p *Powerset) CoveredBy(a Level) []Level {
	p.check(a)
	m := uint64(a)
	full := uint64(p.Top())
	out := make([]Level, 0, bits.OnesCount64(full&^m))
	for w := full &^ m; w != 0; w &= w - 1 {
		bit := w & -w
		out = append(out, Level(m|bit))
	}
	return out
}

// Height implements Lattice.
func (p *Powerset) Height() int { return len(p.universe) }

// Contains implements Lattice.
func (p *Powerset) Contains(l Level) bool { return uint64(l)&^uint64(p.Top()) == 0 }

// Elements implements Enumerable.
func (p *Powerset) Elements() []Level { return p.elems }

// FormatLevel implements Lattice, rendering e.g. "{Army,Nuclear}".
func (p *Powerset) FormatLevel(l Level) string {
	p.check(l)
	var names []string
	for i, c := range p.universe {
		if uint64(l)&(1<<uint(i)) != 0 {
			names = append(names, c)
		}
	}
	sort.Strings(names)
	return "{" + strings.Join(names, ",") + "}"
}

// ParseLevel implements Lattice, accepting the FormatLevel form.
func (p *Powerset) ParseLevel(s string) (Level, error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "{") || !strings.HasSuffix(s, "}") {
		return 0, fmt.Errorf("powerset %q: level %q not of the form {a,b}", p.name, s)
	}
	body := strings.TrimSuffix(strings.TrimPrefix(s, "{"), "}")
	if strings.TrimSpace(body) == "" {
		return 0, nil
	}
	var cats []string
	for _, c := range strings.Split(body, ",") {
		cats = append(cats, strings.TrimSpace(c))
	}
	return p.LevelOf(cats...)
}

// MinComplement implements ComplementMinimizer: the unique minimal set
// whose union with others includes rhs is the set difference rhs − others.
func (p *Powerset) MinComplement(others, rhs Level) Level {
	p.check(others)
	p.check(rhs)
	return Level(uint64(rhs) &^ uint64(others))
}

func (p *Powerset) check(l Level) {
	if !p.Contains(l) {
		panic(fmt.Sprintf("powerset %q: level handle %d out of range", p.name, l))
	}
}
