package lattice

import (
	"fmt"
	"strings"
)

// Product is the component-wise product of two enumerable lattices: levels
// are pairs, dominance / lub / glb are taken component-wise. Products build
// richer policy lattices from simple ones (e.g. a secrecy chain × an
// integrity chain, or an MLS-style lattice from a Chain × Powerset).
//
// A product level packs the left component's element index in the high
// bits and the right component's in the low bits; both components must be
// Enumerable (dense small indices), which keeps handles well-defined.
type Product struct {
	name  string
	left  Enumerable
	right Enumerable
	elems []Level
}

var _ Enumerable = (*Product)(nil)

// NewProduct builds the product lattice left × right.
func NewProduct(name string, left, right Enumerable) (*Product, error) {
	nl, nr := len(left.Elements()), len(right.Elements())
	if nl == 0 || nr == 0 {
		return nil, fmt.Errorf("product %q: empty component", name)
	}
	if uint64(nl) > 1<<32 || uint64(nr) > 1<<32 {
		return nil, fmt.Errorf("product %q: component too large to pack (%d × %d)", name, nl, nr)
	}
	p := &Product{name: name, left: left, right: right}
	p.elems = make([]Level, 0, nl*nr)
	for _, a := range left.Elements() {
		for _, b := range right.Elements() {
			p.elems = append(p.elems, p.pack(a, b))
		}
	}
	return p, nil
}

// MustProduct is NewProduct that panics on error, for static fixtures.
func MustProduct(name string, left, right Enumerable) *Product {
	p, err := NewProduct(name, left, right)
	if err != nil {
		panic(err)
	}
	return p
}

func (p *Product) pack(a, b Level) Level { return a<<32 | b }

// Split unpacks a product level into its components.
func (p *Product) Split(l Level) (left, right Level) { return l >> 32, l & (1<<32 - 1) }

// Name implements Lattice.
func (p *Product) Name() string { return p.name }

// Top implements Lattice.
func (p *Product) Top() Level { return p.pack(p.left.Top(), p.right.Top()) }

// Bottom implements Lattice.
func (p *Product) Bottom() Level { return p.pack(p.left.Bottom(), p.right.Bottom()) }

// Dominates implements Lattice component-wise.
func (p *Product) Dominates(a, b Level) bool {
	al, ar := p.Split(a)
	bl, br := p.Split(b)
	return p.left.Dominates(al, bl) && p.right.Dominates(ar, br)
}

// Lub implements Lattice component-wise.
func (p *Product) Lub(a, b Level) Level {
	al, ar := p.Split(a)
	bl, br := p.Split(b)
	return p.pack(p.left.Lub(al, bl), p.right.Lub(ar, br))
}

// Glb implements Lattice component-wise.
func (p *Product) Glb(a, b Level) Level {
	al, ar := p.Split(a)
	bl, br := p.Split(b)
	return p.pack(p.left.Glb(al, bl), p.right.Glb(ar, br))
}

// Covers implements Lattice: step one component down one cover while
// holding the other fixed (left steps first).
func (p *Product) Covers(a Level) []Level {
	al, ar := p.Split(a)
	lc, rc := p.left.Covers(al), p.right.Covers(ar)
	out := make([]Level, 0, len(lc)+len(rc))
	for _, c := range lc {
		out = append(out, p.pack(c, ar))
	}
	for _, c := range rc {
		out = append(out, p.pack(al, c))
	}
	return out
}

// CoveredBy implements Lattice symmetrically to Covers.
func (p *Product) CoveredBy(a Level) []Level {
	al, ar := p.Split(a)
	lc, rc := p.left.CoveredBy(al), p.right.CoveredBy(ar)
	out := make([]Level, 0, len(lc)+len(rc))
	for _, c := range lc {
		out = append(out, p.pack(c, ar))
	}
	for _, c := range rc {
		out = append(out, p.pack(al, c))
	}
	return out
}

// Height implements Lattice: heights add.
func (p *Product) Height() int { return p.left.Height() + p.right.Height() }

// Contains implements Lattice.
func (p *Product) Contains(l Level) bool {
	a, b := p.Split(l)
	return p.left.Contains(a) && p.right.Contains(b)
}

// Elements implements Enumerable.
func (p *Product) Elements() []Level { return p.elems }

// FormatLevel implements Lattice, rendering "(leftLevel,rightLevel)".
func (p *Product) FormatLevel(l Level) string {
	a, b := p.Split(l)
	return "(" + p.left.FormatLevel(a) + "," + p.right.FormatLevel(b) + ")"
}

// ParseLevel implements Lattice. Because component names may themselves
// contain commas (powerset sets), the split point is searched for the
// first comma at brace depth zero.
func (p *Product) ParseLevel(s string) (Level, error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "(") || !strings.HasSuffix(s, ")") {
		return 0, fmt.Errorf("product %q: level %q not of the form (a,b)", p.name, s)
	}
	body := s[1 : len(s)-1]
	depth := 0
	for i, r := range body {
		switch r {
		case '{', '<', '(':
			depth++
		case '}', '>', ')':
			depth--
		case ',':
			if depth == 0 {
				a, err := p.left.ParseLevel(body[:i])
				if err != nil {
					return 0, err
				}
				b, err := p.right.ParseLevel(body[i+1:])
				if err != nil {
					return 0, err
				}
				return p.pack(a, b), nil
			}
		}
	}
	return 0, fmt.Errorf("product %q: level %q missing component separator", p.name, s)
}
