package lattice

import "fmt"

// Names used for injected dummy elements. Section 6 of the paper handles
// semi-lattices (orders missing a top and/or bottom) by adding dummy
// extremes, running Algorithm 3.1 unchanged, and interpreting attributes
// left at the dummy ⊤ as unsatisfiable requirements and attributes at the
// dummy ⊥ as unconstrained.
const (
	DummyTopName    = "_dummy_top_"
	DummyBottomName = "_dummy_bot_"
)

// Completion records what CompleteToLattice had to add.
type Completion struct {
	AddedTop    bool
	AddedBottom bool
}

// CompleteToLattice builds an Explicit lattice from a cover relation that
// may be missing a unique top and/or bottom, injecting dummy extremes where
// needed (§6, "Semi-lattices"). The resulting order must still be a
// lattice (every pair with an upper bound must have a least upper bound);
// otherwise an error is returned, since arbitrary posets make minimal
// classification NP-complete (Theorem 6.1).
func CompleteToLattice(name string, names []string, covers map[string][]string) (*Explicit, Completion, error) {
	var comp Completion
	for _, nm := range names {
		if nm == DummyTopName || nm == DummyBottomName {
			return nil, comp, fmt.Errorf("lattice %q: element name %q is reserved", name, nm)
		}
	}
	hasIncoming := make(map[string]bool, len(names))
	hasOutgoing := make(map[string]bool, len(names))
	declared := make(map[string]bool, len(names))
	for _, nm := range names {
		declared[nm] = true
	}
	for from, tos := range covers {
		if !declared[from] {
			return nil, comp, fmt.Errorf("lattice %q: cover source %q not declared", name, from)
		}
		for _, to := range tos {
			if !declared[to] {
				return nil, comp, fmt.Errorf("lattice %q: cover target %q not declared", name, to)
			}
			hasOutgoing[from] = true
			hasIncoming[to] = true
		}
	}
	var maximal, minimal []string
	for _, nm := range names {
		if !hasIncoming[nm] {
			maximal = append(maximal, nm)
		}
		if !hasOutgoing[nm] {
			minimal = append(minimal, nm)
		}
	}
	allNames := append([]string(nil), names...)
	allCovers := make(map[string][]string, len(covers)+2)
	for k, v := range covers {
		allCovers[k] = v
	}
	if len(maximal) != 1 {
		comp.AddedTop = true
		allNames = append(allNames, DummyTopName)
		allCovers[DummyTopName] = maximal
	}
	if len(minimal) != 1 {
		comp.AddedBottom = true
		allNames = append(allNames, DummyBottomName)
		for _, m := range minimal {
			allCovers[m] = append(append([]string(nil), allCovers[m]...), DummyBottomName)
		}
	}
	e, err := NewExplicit(name, allNames, allCovers)
	if err != nil {
		return nil, comp, err
	}
	return e, comp, nil
}

// IsDummy reports whether a level of an Explicit lattice is one of the
// dummy extremes injected by CompleteToLattice.
func IsDummy(e *Explicit, l Level) bool {
	n := e.FormatLevel(l)
	return n == DummyTopName || n == DummyBottomName
}
