package lattice

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// Parse reads a lattice description from a small line-oriented text format
// used by the command-line tools. Blank lines and lines starting with '#'
// are ignored. Three forms are supported:
//
// A chain (total order), levels listed bottom-up:
//
//	chain NAME
//	levels Unclassified Confidential Secret TopSecret
//
// A compartmented MLS lattice:
//
//	mls NAME
//	levels S TS
//	categories Army Nuclear
//
// An arbitrary explicit lattice given by its Hasse diagram; each "cover"
// line says the first element covers (is an immediate ancestor of) the
// rest, in left-to-right descent order. With "semilattice" in place of
// "explicit", missing extremes are completed with dummies per §6:
//
//	explicit NAME
//	elements 1 L1 L2 L3 L4 L5 L6
//	cover L6 L5 L4
//	cover L5 L3
//	cover L4 L2 L3
//	cover L3 L1
//	cover L2 L1
//	cover L1 1
func Parse(r io.Reader) (Lattice, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	var kind, name string
	var levels, categories, elements []string
	covers := make(map[string][]string)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		key, args := fields[0], fields[1:]
		switch key {
		case "chain", "mls", "explicit", "semilattice":
			if kind != "" {
				return nil, fmt.Errorf("line %d: lattice kind already declared as %q", lineno, kind)
			}
			if len(args) != 1 {
				return nil, fmt.Errorf("line %d: %s takes exactly one name", lineno, key)
			}
			kind, name = key, args[0]
		case "levels":
			levels = append(levels, args...)
		case "categories":
			categories = append(categories, args...)
		case "elements":
			elements = append(elements, args...)
		case "cover":
			if len(args) < 2 {
				return nil, fmt.Errorf("line %d: cover needs an element and at least one descendant", lineno)
			}
			covers[args[0]] = append(covers[args[0]], args[1:]...)
		default:
			return nil, fmt.Errorf("line %d: unknown directive %q", lineno, key)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	switch kind {
	case "":
		return nil, fmt.Errorf("missing lattice declaration (chain/mls/explicit/semilattice)")
	case "chain":
		return NewChain(name, levels...)
	case "mls":
		return NewMLS(name, levels, categories)
	case "explicit":
		return NewExplicit(name, elements, covers)
	case "semilattice":
		l, _, err := CompleteToLattice(name, elements, covers)
		return l, err
	}
	panic("unreachable")
}

// ParseString is Parse over an in-memory description.
func ParseString(s string) (Lattice, error) { return Parse(strings.NewReader(s)) }
