// Package experiments implements the reproduction experiments E1–E10 of
// DESIGN.md: each function runs one experiment — the Figure 2 worked
// example, the Theorem 5.2 scaling claims, the §5 lattice-encoding cost
// claims, the baseline comparisons, the Theorem 6.1 hardness contrast, and
// the §6 extensions — and returns its results as a printable table.
// cmd/benchtab renders them; EXPERIMENTS.md records paper-claim versus
// measured outcome.
package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"minup/internal/baseline"
	"minup/internal/constraint"
	"minup/internal/core"
	"minup/internal/lattice"
	"minup/internal/mac"
	"minup/internal/mlsdb"
	"minup/internal/poset"
	"minup/internal/workload"
)

// Table is one experiment's result.
type Table struct {
	ID      string
	Title   string
	Claim   string // what the paper claims / implies
	Columns []string
	Rows    [][]string
	Notes   []string
}

// Format renders the table as aligned text.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	fmt.Fprintf(&b, "paper: %s\n\n", t.Claim)
	width := make([]int, len(t.Columns))
	rows := append([][]string{t.Columns}, t.Rows...)
	for _, row := range rows {
		for i, cell := range row {
			if i < len(width) && len(cell) > width[i] {
				width[i] = len(cell)
			}
		}
	}
	for ri, row := range rows {
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], cell)
		}
		b.WriteString("\n")
		if ri == 0 {
			for i, w := range width {
				if i > 0 {
					b.WriteString("  ")
				}
				b.WriteString(strings.Repeat("-", w))
			}
			b.WriteString("\n")
		}
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Registry maps experiment ids to their runners.
var Registry = map[string]func() (*Table, error){
	"E1":  E1Figure2,
	"E2":  E2AcyclicScaling,
	"E3":  E3CyclicScaling,
	"E4":  E4LatticeOps,
	"E5":  E5VsQian,
	"E6":  E6VsBacktracking,
	"E7":  E7MinPoset,
	"E8":  E8UpperBounds,
	"E9":  E9SemiLattice,
	"E10": E10Database,
	"E11": E11MinimalVsOptimal,
	"E12": E12LeakageSimulation,
}

// IDs returns the experiment ids in order.
func IDs() []string {
	ids := make([]string, 0, len(Registry))
	for id := range Registry {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if len(ids[i]) != len(ids[j]) {
			return len(ids[i]) < len(ids[j])
		}
		return ids[i] < ids[j]
	})
	return ids
}

// timeIt runs f repeatedly until ~50ms elapse and returns ns/op.
func timeIt(f func()) float64 {
	f() // warm up
	n := 1
	for {
		start := time.Now()
		for i := 0; i < n; i++ {
			f()
		}
		el := time.Since(start)
		if el > 50*time.Millisecond {
			return float64(el.Nanoseconds()) / float64(n)
		}
		n *= 4
	}
}

func ns(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.2fs", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.2fms", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fµs", v/1e3)
	default:
		return fmt.Sprintf("%.0fns", v)
	}
}

// E1Figure2 reproduces the Figure 2 worked example and reports the trace
// events and final levels against the paper's table.
func E1Figure2() (*Table, error) {
	f := constraint.NewFigure2()
	res := core.MustSolve(f.Set, core.Options{RecordTrace: true})
	t := &Table{
		ID:      "E1",
		Title:   "Figure 2 worked example",
		Claim:   "final levels P=L1 B=L5 C=L4 E=L1 F=L4 G=L1 M=L3 I=L5 O=L5 N=L5 D=L4; tries B:L5 C:L4 E:L2,L1 F:L2(F) I:L5",
		Columns: []string{"attr", "computed", "paper", "match"},
	}
	for _, a := range f.Set.Attrs() {
		got := f.Lattice.FormatLevel(res.Assignment[a])
		want := f.Lattice.FormatLevel(f.Want[a])
		match := "yes"
		if got != want {
			match = "NO"
		}
		t.Rows = append(t.Rows, []string{f.Set.AttrName(a), got, want, match})
	}
	t.Notes = append(t.Notes,
		"try sequence: "+strings.Join(res.Trace.Tries(), ", "),
		"the paper's table omits the forced failing try(O,L3); see DESIGN.md §5")
	min, err := baseline.IsMinimal(f.Set, res.Assignment)
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes, fmt.Sprintf("exhaustively verified minimal: %v", min))
	return t, nil
}

// E2AcyclicScaling measures solve time on acyclic constraint sets of
// doubling size S — Theorem 5.2 claims O(Sc), i.e. constant ns/S.
func E2AcyclicScaling() (*Table, error) {
	lat := lattice.MustMLS("mls", []string{"U", "C", "S", "TS"},
		[]string{"a", "b", "c", "d", "e", "f", "g", "h"})
	t := &Table{
		ID:      "E2",
		Title:   "acyclic scaling (Theorem 5.2: O(S·c), linear)",
		Claim:   "time linear in total constraint size S for acyclic sets",
		Columns: []string{"N_A", "N_C", "S", "time/solve", "ns/S"},
	}
	for _, n := range []int{500, 1000, 2000, 4000, 8000, 16000} {
		s := workload.MustConstraints(lat, workload.ConstraintSpec{
			Seed: 42, NumAttrs: n, NumConstraints: 3 * n, MaxLHS: 3,
			LevelRHSFraction: 0.3,
		})
		size := s.TotalSize()
		el := timeIt(func() { core.MustSolve(s, core.Options{}) })
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n), fmt.Sprint(len(s.Constraints())), fmt.Sprint(size),
			ns(el), fmt.Sprintf("%.1f", el/float64(size)),
		})
	}
	t.Notes = append(t.Notes, "ns/S approximately flat ⇒ linear in S as claimed")
	return t, nil
}

// E3CyclicScaling measures solve time on single-SCC constraint sets — the
// worst case of Theorem 5.2's cyclic bound. Two shapes are measured: a
// random single SCC (where Try's propagation stays local, the "should not
// occur in practice" good case the paper expects), and an adversarial ring
// in which every Try walks the whole component, realizing the ≈N_A·S
// quadratic behavior of the bound.
func E3CyclicScaling() (*Table, error) {
	lat := lattice.FigureOneB()
	t := &Table{
		ID:      "E3",
		Title:   "cyclic worst case (Theorem 5.2: O(N_A·S·H·M·c))",
		Claim:   "quadratic in the worst case (one SCC, global propagation); typically far cheaper; acyclic same-size inputs stay linear",
		Columns: []string{"N_A", "ring time", "ring checks", "checks/N_A²", "random-SCC time", "acyclic time"},
	}
	mid, _ := lat.ParseLevel("L3")
	for _, n := range []int{32, 64, 128, 256, 512, 1024} {
		ring := ringWorstCase(lat, n, mid)
		rnd := workload.MustConstraints(lat, workload.ConstraintSpec{
			Seed: 7, NumAttrs: n, NumConstraints: 2 * n, MaxLHS: 3,
			LevelRHSFraction: 0.25, Cyclic: true, SingleSCC: true,
		})
		acy := workload.MustConstraints(lat, workload.ConstraintSpec{
			Seed: 7, NumAttrs: n, NumConstraints: 2 * n, MaxLHS: 3,
			LevelRHSFraction: 0.25,
		})
		var stats core.Stats
		elRing := timeIt(func() { stats = core.MustSolve(ring, core.Options{}).Stats })
		elRnd := timeIt(func() { core.MustSolve(rnd, core.Options{}) })
		elAcy := timeIt(func() { core.MustSolve(acy, core.Options{}) })
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n), ns(elRing), fmt.Sprint(stats.TrySteps),
			fmt.Sprintf("%.2f", float64(stats.TrySteps)/float64(n*n)),
			ns(elRnd), ns(elAcy),
		})
	}
	t.Notes = append(t.Notes,
		"ring checks/N_A² flat ⇒ the adversarial single SCC is quadratic, within the N_A·S bound",
		"the random SCC stays near-linear: Try propagation is local, matching the paper's expectation for practice")

	// Height sweep: the H (and M) factors of the bound. The same 256-ring
	// over chains of growing height forces proportionally more descent
	// steps per attribute.
	for _, h := range []int{3, 7, 15, 31} {
		names := make([]string, h+1)
		for i := range names {
			names[i] = fmt.Sprintf("h%02d", i)
		}
		chain := lattice.MustChain(fmt.Sprintf("chain%d", h+1), names...)
		bound := chain.Bottom() // every attribute must descend the full height
		ring := ringWorstCase(chain, 256, bound)
		var stats core.Stats
		el := timeIt(func() { stats = core.MustSolve(ring, core.Options{}).Stats })
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("H=%d (ring 256)", h), ns(el), fmt.Sprint(stats.TrySteps),
			"", "", "",
		})
	}
	t.Notes = append(t.Notes,
		"height rows: the same 256-attribute ring over chains of height 3..31 — checks scale with H, the H·M factor of the bound")
	return t, nil
}

// ringWorstCase builds a simple-constraint ring a0 ≥ a1 ≥ … ≥ a0 plus one
// constant lower bound, forcing every attribute to the same level while
// each Try call traverses the entire component.
func ringWorstCase(lat lattice.Lattice, n int, bound lattice.Level) *constraint.Set {
	s := constraint.NewSet(lat)
	attrs := make([]constraint.Attr, n)
	for i := range attrs {
		attrs[i] = s.MustAttr(fmt.Sprintf("r%04d", i))
	}
	for i := range attrs {
		s.MustAdd([]constraint.Attr{attrs[i]}, constraint.AttrRHS(attrs[(i+1)%n]))
	}
	s.MustAdd([]constraint.Attr{attrs[0]}, constraint.LevelRHS(bound))
	return s
}

// E4LatticeOps measures the §5 claim that encoding makes lattice
// operations effectively constant-time.
func E4LatticeOps() (*Table, error) {
	base, err := workload.RandomSublattice(3, 9, 40)
	if err != nil {
		return nil, err
	}
	naive := lattice.NaiveOps{Explicit: base}
	mls := lattice.MustMLS("mls16x16", make16(), make16cats())
	elems := base.Elements()
	t := &Table{
		ID:      "E4",
		Title:   "lattice operation cost (§5: encoding makes c constant)",
		Claim:   "closure-bitset and bit-vector encodings give near constant-time lub/glb/dominance; naive Hasse walks do not",
		Columns: []string{"implementation", "|L|", "dominates", "lub", "glb"},
	}
	pairs := make([][2]lattice.Level, 0, 256)
	for i := 0; i < 256; i++ {
		pairs = append(pairs, [2]lattice.Level{
			elems[(i*7)%len(elems)], elems[(i*13+5)%len(elems)]})
	}
	row := func(name string, size string, l lattice.Lattice) {
		dom := timeIt(func() {
			for _, p := range pairs {
				l.Dominates(p[0], p[1])
			}
		}) / float64(len(pairs))
		lub := timeIt(func() {
			for _, p := range pairs {
				l.Lub(p[0], p[1])
			}
		}) / float64(len(pairs))
		glb := timeIt(func() {
			for _, p := range pairs {
				l.Glb(p[0], p[1])
			}
		}) / float64(len(pairs))
		t.Rows = append(t.Rows, []string{name, size, ns(dom), ns(lub), ns(glb)})
	}
	row("explicit+closure tables", fmt.Sprint(base.Size()), base)
	ji := lattice.MustJICode(base)
	jiDom := timeIt(func() {
		for _, p := range pairs {
			ji.Dominates(p[0], p[1])
		}
	}) / float64(len(pairs))
	jiLub := timeIt(func() {
		for _, p := range pairs {
			ji.Lub(p[0], p[1])
		}
	}) / float64(len(pairs))
	jiGlb := timeIt(func() {
		for _, p := range pairs {
			ji.Glb(p[0], p[1])
		}
	}) / float64(len(pairs))
	t.Rows = append(t.Rows, []string{
		fmt.Sprintf("Aït-Kaci JI code (%d bits)", ji.NumIrreducibles()),
		fmt.Sprint(base.Size()), ns(jiDom), ns(jiLub), ns(jiGlb)})
	row("naive Hasse walk", fmt.Sprint(base.Size()), naive)
	// MLS pairs.
	mlsPairs := make([][2]lattice.Level, len(pairs))
	for i := range mlsPairs {
		a, _ := mls.LevelFromParts(i%16, uint64(i*2654435761)&0xffff)
		b, _ := mls.LevelFromParts((i*5)%16, uint64(i*40503)&0xffff)
		mlsPairs[i] = [2]lattice.Level{a, b}
	}
	pairs = mlsPairs
	row("MLS bit-vector (16×2^16)", fmt.Sprint(mls.Count()), mls)

	// End-to-end ablation: same solve with encoded vs naive ops. Kept
	// small — the naive variant is four orders of magnitude slower.
	s := buildOn(base, 120)
	sn := buildOn(naive, 120)
	ele := timeIt(func() { core.MustSolve(s, core.Options{}) })
	start := time.Now()
	core.MustSolve(sn, core.Options{})
	eln := float64(time.Since(start).Nanoseconds())
	t.Notes = append(t.Notes, fmt.Sprintf(
		"end-to-end solve, 120 attrs on the %d-element lattice: encoded %s vs naive %s (%.0f× speedup)",
		base.Size(), ns(ele), ns(eln), eln/ele))
	t.Notes = append(t.Notes, fmt.Sprintf(
		"space: closure rows %d bits/element vs JI code %d bits/element (%d join-irreducibles)",
		(base.Size()+63)/64*64, ji.CodeWords()*64, ji.NumIrreducibles()))
	return t, nil
}

func make16() []string {
	out := make([]string, 16)
	for i := range out {
		out[i] = fmt.Sprintf("L%02d", i)
	}
	return out
}

func make16cats() []string {
	out := make([]string, 16)
	for i := range out {
		out[i] = fmt.Sprintf("c%02d", i)
	}
	return out
}

func buildOn(lat lattice.Lattice, n int) *constraint.Set {
	return workload.MustConstraints(lat, workload.ConstraintSpec{
		Seed: 5, NumAttrs: n, NumConstraints: 2 * n, MaxLHS: 3,
		LevelRHSFraction: 0.3, Cyclic: true,
	})
}

// E5VsQian compares Algorithm 3.1 with the overclassifying polynomial
// propagation attributed to Qian [13].
func E5VsQian() (*Table, error) {
	lat := lattice.MustMLS("mls", []string{"U", "C", "S", "TS"},
		[]string{"a", "b", "c", "d", "e", "f"})
	t := &Table{
		ID:      "E5",
		Title:   "minimal classification vs. overclassifying propagation (Qian [13])",
		Claim:   "the polynomial view-based method satisfies constraints but overclassifies; Algorithm 3.1 is minimal at comparable cost",
		Columns: []string{"N_A", "shape", "alg3.1 time", "qian time", "attrs overclassified", "mean extra height"},
	}
	for _, tc := range []struct {
		n      int
		cyclic bool
		name   string
	}{
		{200, false, "acyclic"},
		{200, true, "cyclic"},
		{800, false, "acyclic"},
		{800, true, "cyclic"},
	} {
		s := workload.MustConstraints(lat, workload.ConstraintSpec{
			Seed: 11, NumAttrs: tc.n, NumConstraints: 2 * tc.n, MaxLHS: 3,
			LevelRHSFraction: 0.35, Cyclic: tc.cyclic,
		})
		var ours constraint.Assignment
		elo := timeIt(func() { ours = core.MustSolve(s, core.Options{}).Assignment })
		var qian constraint.Assignment
		elq := timeIt(func() {
			q, err := baseline.Qian(s)
			if err != nil {
				panic(err)
			}
			qian = q
		})
		over, extra := 0, 0
		for i := range ours {
			if qian[i] != ours[i] && lat.Dominates(qian[i], ours[i]) {
				over++
				extra += heightAbove(lat, qian[i], ours[i])
			}
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(tc.n), tc.name, ns(elo), ns(elq),
			fmt.Sprintf("%d/%d (%.0f%%)", over, tc.n, 100*float64(over)/float64(tc.n)),
			fmt.Sprintf("%.2f", float64(extra)/float64(max(over, 1))),
		})
	}
	t.Notes = append(t.Notes, "overclassified = attributes Qian labels strictly above Algorithm 3.1's minimal level")
	return t, nil
}

// heightAbove counts lattice steps from lo up to hi along greedy covers.
func heightAbove(lat lattice.Lattice, hi, lo lattice.Level) int {
	steps := 0
	cur := hi
	for cur != lo {
		moved := false
		for _, c := range lat.Covers(cur) {
			if lat.Dominates(c, lo) {
				cur = c
				steps++
				moved = true
				break
			}
		}
		if !moved {
			return steps + 1
		}
	}
	return steps
}

// E6VsBacktracking demonstrates why the paper rejects back-propagation
// with backtracking: its cost is the product of complex-constraint widths.
func E6VsBacktracking() (*Table, error) {
	lat := lattice.MustChain("mil", "U", "C", "S", "TS")
	t := &Table{
		ID:      "E6",
		Title:   "Algorithm 3.1 vs. rejected backtracking alternative (§3.2)",
		Claim:   "backtracking is exponential in the number of entangled complex constraints (∏|lhs|); Algorithm 3.1 stays polynomial",
		Columns: []string{"complex constraints k", "width w", "vectors w^k", "alg3.1", "backtracking"},
	}
	for _, k := range []int{4, 8, 12, 16} {
		w := 3
		s := entangledCycle(lat, k, w)
		ela := timeIt(func() { core.MustSolve(s, core.Options{}) })
		var elb string
		if pow(w, k) <= 5_000_000 {
			el := timeIt(func() {
				if _, _, err := baseline.Backtracking(s, pow(w, k)+1); err != nil {
					panic(err)
				}
			})
			elb = ns(el)
		} else {
			elb = "infeasible (>5e6 vectors)"
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(k), fmt.Sprint(w), fmt.Sprint(pow(w, k)), ns(ela), elb,
		})
	}
	return t, nil
}

func pow(b, e int) int {
	out := 1
	for i := 0; i < e; i++ {
		out *= b
	}
	return out
}

// entangledCycle builds k width-w complex constraints with overlapping
// left-hand sides threaded through one cycle, the §3.2 hard shape.
func entangledCycle(lat lattice.Lattice, k, w int) *constraint.Set {
	s := constraint.NewSet(lat)
	n := k + w
	attrs := make([]constraint.Attr, n)
	for i := range attrs {
		attrs[i] = s.MustAttr(fmt.Sprintf("x%02d", i))
	}
	// Cycle through all attributes.
	for i := range attrs {
		s.MustAdd([]constraint.Attr{attrs[i]}, constraint.AttrRHS(attrs[(i+1)%n]))
	}
	// Overlapping complex constraints with constant right-hand sides.
	mid := lat.Top()
	if cov := lat.Covers(lat.Top()); len(cov) > 0 {
		mid = cov[0]
	}
	for i := 0; i < k; i++ {
		lhs := make([]constraint.Attr, w)
		for j := 0; j < w; j++ {
			lhs[j] = attrs[(i+j)%n]
		}
		s.MustAdd(lhs, constraint.LevelRHS(mid))
	}
	return s
}

// E7MinPoset contrasts min-lattice (polynomial) with min-poset
// (NP-complete, Theorem 6.1) on reduction instances of growing size.
func E7MinPoset() (*Table, error) {
	t := &Table{
		ID:      "E7",
		Title:   "min-poset NP-hardness (Theorem 6.1)",
		Claim:   "reduction preserves satisfiability; search nodes grow exponentially with variables near the SAT phase transition, while equal-size lattice instances solve in polynomial time",
		Columns: []string{"vars", "clauses", "poset |P|", "sat?", "search nodes", "poset time", "lattice time (same #attrs)"},
	}
	lat := lattice.FigureOneB()
	for _, n := range []int{6, 10, 14, 18} {
		m := int(4.3 * float64(n))
		inst, err := workload.RandomSAT3(int64(n), n, m)
		if err != nil {
			return nil, err
		}
		clauses := make([]poset.Clause, len(inst.Clauses))
		for i, c := range inst.Clauses {
			clauses[i] = poset.Clause{c[0], c[1], c[2]}
		}
		red, err := poset.Reduce(n, clauses)
		if err != nil {
			return nil, err
		}
		var nodes int
		var sat bool
		elp := timeIt(func() {
			m, st, err := red.Instance.Solve(0)
			if err != nil {
				panic(err)
			}
			nodes = st.Nodes
			sat = m != nil
		})
		// A lattice instance with the same number of attributes.
		attrs := len(red.Instance.AttrNames)
		ls := workload.MustConstraints(lat, workload.ConstraintSpec{
			Seed: int64(n), NumAttrs: attrs, NumConstraints: 2 * attrs,
			MaxLHS: 3, LevelRHSFraction: 0.3, Cyclic: true,
		})
		ell := timeIt(func() { core.MustSolve(ls, core.Options{}) })
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n), fmt.Sprint(m), fmt.Sprint(red.Instance.P.Size()),
			fmt.Sprint(sat), fmt.Sprint(nodes), ns(elp), ns(ell),
		})
	}
	t.Notes = append(t.Notes,
		"satisfiability cross-checked against DPLL in the test suite (TestReductionRoundTrip)",
		"22 variables already needs ~5.8e7 nodes (~50s); growth is clearly exponential while the lattice column stays linear")
	return t, nil
}

// E8UpperBounds measures the §6 preprocessing pass.
func E8UpperBounds() (*Table, error) {
	lat := lattice.MustMLS("mls", []string{"U", "C", "S", "TS"},
		[]string{"a", "b", "c", "d", "e", "f"})
	t := &Table{
		ID:      "E8",
		Title:   "upper-bound preprocessing (§6: O(S·c))",
		Claim:   "deriving firm upper bounds is linear in S; solving with bounds keeps the Theorem 5.2 complexity",
		Columns: []string{"N_A", "S", "%bounded", "preprocess", "ns/S", "full solve"},
	}
	for _, n := range []int{1000, 2000, 4000, 8000} {
		s := workload.MustConstraints(lat, workload.ConstraintSpec{
			Seed: 9, NumAttrs: n, NumConstraints: 3 * n, MaxLHS: 3,
			LevelRHSFraction: 0.35,
		})
		// Derive consistent bounds: cap 25% of the attributes at exactly
		// their level in the unbounded minimal solution (the tightest
		// bounds that keep the instance solvable).
		sol := core.MustSolve(s, core.Options{}).Assignment
		for i, a := range s.Attrs() {
			if i%4 == 0 {
				s.MustAddUpper(a, sol[a])
			}
		}
		size := s.TotalSize()
		elp := timeIt(func() {
			if _, err := core.DeriveUpperBounds(s); err != nil {
				panic(err)
			}
		})
		els := timeIt(func() {
			if _, err := core.Solve(s, core.Options{}); err != nil {
				panic(err)
			}
		})
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n), fmt.Sprint(size), "25%",
			ns(elp), fmt.Sprintf("%.1f", elp/float64(size)), ns(els),
		})
	}
	return t, nil
}

// E9SemiLattice demonstrates the §6 semi-lattice diagnoses.
func E9SemiLattice() (*Table, error) {
	t := &Table{
		ID:      "E9",
		Title:   "semi-lattice handling (§6)",
		Claim:   "dummy ⊤: attribute pinned there ⇒ unsatisfiable requirements; dummy ⊥: attribute resting there ⇒ unconstrained input",
		Columns: []string{"case", "attr", "level", "diagnosis"},
	}
	// No top: two incomparable maxima, an attribute forced above both.
	l1, _, err := lattice.CompleteToLattice("no-top",
		[]string{"hi1", "hi2", "lo"},
		map[string][]string{"hi1": {"lo"}, "hi2": {"lo"}})
	if err != nil {
		return nil, err
	}
	s1 := constraint.NewSet(l1)
	a := s1.MustAttr("a")
	h1, _ := l1.ParseLevel("hi1")
	h2, _ := l1.ParseLevel("hi2")
	s1.MustAdd([]constraint.Attr{a}, constraint.LevelRHS(h1))
	s1.MustAdd([]constraint.Attr{a}, constraint.LevelRHS(h2))
	r1 := core.MustSolve(s1, core.Options{})
	d1, err := core.DiagnoseSemiLattice(s1, r1)
	if err != nil {
		return nil, err
	}
	diag1 := "ok"
	if len(d1.Unsatisfiable) > 0 {
		diag1 = "unsatisfiable (pinned at dummy ⊤)"
	}
	t.Rows = append(t.Rows, []string{"no top", "a", l1.FormatLevel(r1.Assignment[a]), diag1})

	// No bottom: an unconstrained attribute rests at the dummy ⊥.
	l2, _, err := lattice.CompleteToLattice("no-bottom",
		[]string{"top", "m1", "m2"},
		map[string][]string{"top": {"m1", "m2"}})
	if err != nil {
		return nil, err
	}
	s2 := constraint.NewSet(l2)
	s2.MustAttr("free")
	b := s2.MustAttr("b")
	m1, _ := l2.ParseLevel("m1")
	s2.MustAdd([]constraint.Attr{b}, constraint.LevelRHS(m1))
	r2 := core.MustSolve(s2, core.Options{})
	d2, err := core.DiagnoseSemiLattice(s2, r2)
	if err != nil {
		return nil, err
	}
	diag2 := "ok"
	if len(d2.Unconstrained) > 0 {
		diag2 = "unconstrained (rests at dummy ⊥)"
	}
	free, _ := s2.AttrByName("free")
	t.Rows = append(t.Rows, []string{"no bottom", "free", l2.FormatLevel(r2.Assignment[free]), diag2})
	t.Rows = append(t.Rows, []string{"no bottom", "b", l2.FormatLevel(r2.Assignment[b]), "real level assigned"})
	return t, nil
}

// E11MinimalVsOptimal contrasts the paper's pointwise minimality with the
// NP-hard cost-optimal upgrading of the prior literature ([16,17] in §1):
// on small random instances, how often is Algorithm 3.1's minimal solution
// also optimal under the "fewest upgraded attributes" cost, and how large
// is the gap when it is not? The paper's position — minimality is
// computable in polynomial time while cost optimality is NP-hard, and the
// two disagree only by bounded amounts — is what the numbers support.
func E11MinimalVsOptimal() (*Table, error) {
	lat := lattice.MustChain("mil", "U", "C", "S", "TS")
	t := &Table{
		ID:      "E11",
		Title:   "pointwise-minimal (Alg 3.1) vs cost-optimal upgrading ([16,17])",
		Claim:   "cost-optimal upgrading is NP-hard; Algorithm 3.1's polynomial minimal solution is usually cost-competitive",
		Columns: []string{"instances", "alg3.1 optimal too", "mean extra upgrades", "max extra", "alg3.1 time", "optimal time"},
	}
	const trials = 60
	optimalToo, extraSum, extraMax := 0, 0, 0
	var elAlg, elOpt float64
	for seed := int64(0); seed < trials; seed++ {
		s := workload.MustConstraints(lat, workload.ConstraintSpec{
			Seed: seed, NumAttrs: 5, NumConstraints: 7, MaxLHS: 3,
			LevelRHSFraction: 0.6, Cyclic: seed%2 == 0,
		})
		var ours constraint.Assignment
		elAlg += timeIt(func() { ours = core.MustSolve(s, core.Options{}).Assignment })
		var best constraint.Assignment
		elOpt += timeIt(func() {
			b, err := baseline.CheapestUpgrade(s, baseline.CountUpgraded)
			if err != nil {
				panic(err)
			}
			best = b
		})
		oursCost := baseline.CountUpgraded(s, ours)
		bestCost := baseline.CountUpgraded(s, best)
		if oursCost == bestCost {
			optimalToo++
		}
		extra := oursCost - bestCost
		extraSum += extra
		if extra > extraMax {
			extraMax = extra
		}
	}
	t.Rows = append(t.Rows, []string{
		fmt.Sprint(trials),
		fmt.Sprintf("%d (%.0f%%)", optimalToo, 100*float64(optimalToo)/trials),
		fmt.Sprintf("%.2f", float64(extraSum)/trials),
		fmt.Sprint(extraMax),
		ns(elAlg / trials), ns(elOpt / trials),
	})
	t.Notes = append(t.Notes,
		"cost = number of attributes classified above ⊥ (the upgrade count of the optimal-upgrading literature)",
		"the optimal column uses exhaustive enumeration, so instances are tiny; Algorithm 3.1's answer is always pointwise minimal yet may pay a few extra upgrades where cost optimality prefers concentrating levels")
	return t, nil
}

// E12LeakageSimulation runs the information-flow argument of §1 end to
// end: for random instances with dependency-induced inference channels, a
// taint-tracking simulation under Bell–LaPadula enforcement shows open
// channels when the inference constraints are dropped from the labeling
// and none when Algorithm 3.1 enforces them.
func E12LeakageSimulation() (*Table, error) {
	lat := lattice.MustChain("mil", "U", "C", "S", "TS")
	t := &Table{
		ID:      "E12",
		Title:   "leakage simulation under Bell–LaPadula (taint tracking)",
		Claim:   "proper classification per the constraints prevents inference leakage; omitting the inference constraints leaves channels open",
		Columns: []string{"instances", "channels/instance", "open w/o inference constraints", "open with Alg 3.1 labeling"},
	}
	const trials = 30
	openWithout, openWith, channels := 0, 0, 0
	for seed := int64(0); seed < trials; seed++ {
		rng := rand.New(rand.NewSource(seed))
		// A random "world": n objects, some dependency pairs (src reveals
		// dst), and secrecy requirements on the dst objects.
		n := 8
		type dep struct{ from, to int }
		var deps []dep
		for i := 0; i < 5; i++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a != b {
				deps = append(deps, dep{a, b})
			}
		}
		channels += len(deps)
		secret, _ := lat.ParseLevel("S")

		build := func(withInference bool) map[string]lattice.Level {
			s := constraint.NewSet(lat)
			attrs := make([]constraint.Attr, n)
			for i := range attrs {
				attrs[i] = s.MustAttr(fmt.Sprintf("o%d", i))
			}
			for _, d := range deps {
				s.MustAdd([]constraint.Attr{attrs[d.to]}, constraint.LevelRHS(secret))
				if withInference {
					if _, err := s.AddIgnoreTrivial([]constraint.Attr{attrs[d.from]},
						constraint.AttrRHS(attrs[d.to])); err != nil {
						panic(err)
					}
				}
			}
			res := core.MustSolve(s, core.Options{})
			levels := make(map[string]lattice.Level, n)
			for i, a := range attrs {
				levels[fmt.Sprintf("o%d", i)] = res.Assignment[a]
			}
			return levels
		}
		count := func(levels map[string]lattice.Level) int {
			mon := mac.NewMonitor(lat)
			sim := mac.NewFlowSim(mon, levels)
			// Dependencies taint sources with the data they reveal,
			// regardless of any access control — that is what inference
			// means.
			for _, d := range deps {
				sim.Taint(fmt.Sprintf("o%d", d.from), fmt.Sprintf("o%d", d.to))
			}
			return len(sim.Check())
		}
		openWithout += count(build(false))
		openWith += count(build(true))
	}
	t.Rows = append(t.Rows, []string{
		fmt.Sprint(trials),
		fmt.Sprintf("%.1f", float64(channels)/trials),
		fmt.Sprint(openWithout),
		fmt.Sprint(openWith),
	})
	t.Notes = append(t.Notes,
		"a channel is 'open' when an object's taint includes data above its own level, i.e. a cleared-for-the-object reader learns higher data")
	return t, nil
}

// E10Database runs the hospital scenario end to end.
func E10Database() (*Table, error) {
	fx, err := mlsdb.Hospital()
	if err != nil {
		return nil, err
	}
	set, err := fx.Schema.Constraints(fx.Reqs, fx.Assocs)
	if err != nil {
		return nil, err
	}
	res, err := core.Solve(set, core.Options{})
	if err != nil {
		return nil, err
	}
	lab, err := fx.Schema.ApplyAssignment(set, res.Assignment)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "E10",
		Title:   "database end-to-end (hospital schema)",
		Claim:   "schema-derived key/referential/FD constraints yield a minimal labeling that closes every inference channel",
		Columns: []string{"attribute", "level"},
	}
	for _, rel := range fx.Schema.Relations() {
		for _, a := range rel.Attrs {
			l, _ := lab.Level(rel.Name, a)
			t.Rows = append(t.Rows, []string{rel.Name + "." + a, fx.Lattice.FormatLevel(l)})
		}
	}
	open := fx.Schema.CheckInferenceClosed(lab)
	t.Notes = append(t.Notes,
		fmt.Sprintf("generated constraints: %d; open inference channels after labeling: %d", len(set.Constraints()), len(open)))
	min, err := baseline.IsMinimal(set, res.Assignment)
	if err != nil {
		t.Notes = append(t.Notes, "minimality: instance too large for the exhaustive oracle")
	} else {
		t.Notes = append(t.Notes, fmt.Sprintf("labeling exhaustively minimal: %v", min))
	}
	return t, nil
}
