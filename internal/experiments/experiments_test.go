package experiments

import (
	"strings"
	"testing"

	"minup/internal/core"
	"minup/internal/lattice"
)

// The scaling experiments (E2–E8) take seconds to minutes and are run via
// cmd/benchtab; the tests here cover the fast experiments end to end and
// the table plumbing, so the harness itself stays verified by `go test`.

func TestE1Figure2(t *testing.T) {
	table, err := E1Figure2()
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 11 {
		t.Fatalf("rows = %d, want 11", len(table.Rows))
	}
	for _, row := range table.Rows {
		if row[3] != "yes" {
			t.Errorf("attribute %s mismatches the paper: %v", row[0], row)
		}
	}
	out := table.Format()
	for _, want := range []string{"E1", "paper:", "attr", "try(F,L2) F"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted table missing %q", want)
		}
	}
}

func TestE9SemiLattice(t *testing.T) {
	table, err := E9SemiLattice()
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 3 {
		t.Fatalf("rows = %d", len(table.Rows))
	}
	if !strings.Contains(table.Rows[0][3], "unsatisfiable") {
		t.Errorf("no-top diagnosis = %q", table.Rows[0][3])
	}
	if !strings.Contains(table.Rows[1][3], "unconstrained") {
		t.Errorf("no-bottom diagnosis = %q", table.Rows[1][3])
	}
}

func TestE10Database(t *testing.T) {
	table, err := E10Database()
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 9 {
		t.Fatalf("rows = %d, want 9 labeled attributes", len(table.Rows))
	}
	joined := strings.Join(table.Notes, " ")
	if !strings.Contains(joined, "open inference channels after labeling: 0") {
		t.Errorf("channels not closed: %v", table.Notes)
	}
	if !strings.Contains(joined, "minimal: true") {
		t.Errorf("not verified minimal: %v", table.Notes)
	}
}

func TestRegistryComplete(t *testing.T) {
	ids := IDs()
	if len(ids) != 12 || ids[0] != "E1" || ids[11] != "E12" {
		t.Fatalf("ids = %v", ids)
	}
	for _, id := range ids {
		if Registry[id] == nil {
			t.Errorf("missing runner for %s", id)
		}
	}
}

func TestRingWorstCaseShape(t *testing.T) {
	// The E3 adversarial instance must be a single SCC whose minimal
	// solution pins every attribute at the bound level.
	lat := lattice.FigureOneB()
	mid, _ := lat.ParseLevel("L3")
	s := ringWorstCase(lat, 40, mid)
	if s.Acyclic() {
		t.Fatal("ring is acyclic")
	}
	if pr := s.Priorities(); pr.Max != 1 {
		t.Fatalf("ring has %d SCCs, want 1", pr.Max)
	}
	res := core.MustSolve(s, core.Options{})
	for _, a := range s.Attrs() {
		if res.Assignment[a] != mid {
			t.Fatalf("ring attribute %s at %s, want L3",
				s.AttrName(a), lat.FormatLevel(res.Assignment[a]))
		}
	}
	// Quadratic signature: constraint checks scale with N².
	if res.Stats.TrySteps < 40*40/4 {
		t.Errorf("ring try steps = %d, suspiciously low", res.Stats.TrySteps)
	}
}

func TestEntangledCycleShape(t *testing.T) {
	lat := lattice.MustChain("mil", "U", "C", "S", "TS")
	s := entangledCycle(lat, 5, 3)
	if s.Acyclic() {
		t.Fatal("entangled cycle is acyclic")
	}
	res := core.MustSolve(s, core.Options{})
	if v := s.Violations(res.Assignment); v != nil {
		t.Fatalf("violations: %v", v)
	}
}
