package poset

import (
	"testing"

	"minup/internal/workload"
)

func TestFromCoversBasics(t *testing.T) {
	p := MustFromCovers("p",
		[]string{"t", "a", "b", "z"},
		map[string][]string{"t": {"a", "b"}, "a": {"z"}, "b": {"z"}})
	ge := func(x, y string) bool {
		a, _ := p.ElemByName(x)
		b, _ := p.ElemByName(y)
		return p.GE(a, b)
	}
	for _, tc := range []struct {
		a, b string
		want bool
	}{
		{"t", "z", true}, {"t", "a", true}, {"a", "a", true},
		{"a", "b", false}, {"z", "t", false}, {"a", "z", true},
	} {
		if got := ge(tc.a, tc.b); got != tc.want {
			t.Errorf("GE(%s,%s) = %v", tc.a, tc.b, got)
		}
	}
	if p.Size() != 4 {
		t.Errorf("size = %d", p.Size())
	}
	if len(p.Maximal()) != 1 || len(p.Minimal()) != 1 {
		t.Errorf("extremes: %v %v", p.Maximal(), p.Minimal())
	}
	if !p.IsLattice() {
		t.Error("diamond should be a lattice")
	}
}

func TestFromCoversErrors(t *testing.T) {
	cases := []struct {
		names  []string
		covers map[string][]string
	}{
		{nil, nil},
		{[]string{"a", "a"}, nil},
		{[]string{"a"}, map[string][]string{"a": {"a"}}},
		{[]string{"a"}, map[string][]string{"b": {"a"}}},
		{[]string{"a"}, map[string][]string{"a": {"b"}}},
		{[]string{"a", "b"}, map[string][]string{"a": {"b"}, "b": {"a"}}},
	}
	for i, tc := range cases {
		if _, err := FromCovers("bad", tc.names, tc.covers); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestFigure4BNotPartialLattice(t *testing.T) {
	p := Figure4B()
	if p.IsLattice() {
		t.Error("figure 4(b) must not be a lattice")
	}
	if p.IsPartialLattice() {
		t.Error("figure 4(b) must not be a partial lattice")
	}
	a, _ := p.ElemByName("c")
	b, _ := p.ElemByName("d")
	mubs := p.MinimalUpperBounds(a, b)
	if len(mubs) != 2 {
		t.Fatalf("c,d minimal upper bounds = %v, want 2", mubs)
	}
}

func TestMinPosetChoiceGadget(t *testing.T) {
	// On Figure 4(b): an attribute required to dominate both bottoms must
	// land on one of the two incomparable tops — the choice that drives
	// the NP-hardness.
	p := Figure4B()
	in := NewInstance(p)
	w := in.AddAttr("w")
	c, _ := p.ElemByName("c")
	d, _ := p.ElemByName("d")
	in.AddLowerElem([]int{w}, c)
	in.AddLowerElem([]int{w}, d)
	m, stats, err := in.Solve(0)
	if err != nil {
		t.Fatal(err)
	}
	if m == nil {
		t.Fatal("gadget unsatisfiable")
	}
	if name := p.ElemName(m[w]); name != "a" && name != "b" {
		t.Errorf("w = %s, want a or b", name)
	}
	if stats.Nodes == 0 {
		t.Error("no search effort recorded")
	}
	min, err := in.MinimalBelow(m)
	if err != nil || !min {
		t.Errorf("solution not minimal: %v %v", min, err)
	}
}

func TestMinPosetUnsat(t *testing.T) {
	p := Figure4B()
	in := NewInstance(p)
	w := in.AddAttr("w")
	a, _ := p.ElemByName("a")
	c, _ := p.ElemByName("c")
	// w must dominate a but stay below c: impossible.
	in.AddLowerElem([]int{w}, a)
	in.AddUpper(w, c)
	m, _, err := in.Solve(0)
	if err != nil {
		t.Fatal(err)
	}
	if m != nil {
		t.Fatalf("unsatisfiable instance solved: %s", in.FormatAssignment(m))
	}
}

func TestMinPosetComplexSemantics(t *testing.T) {
	// lub{x,y} ≥ top on a diamond: on a lattice poset the complex
	// constraint must behave exactly like the lattice version.
	p := MustFromCovers("diamond",
		[]string{"t", "a", "b", "z"},
		map[string][]string{"t": {"a", "b"}, "a": {"z"}, "b": {"z"}})
	in := NewInstance(p)
	x, y := in.AddAttr("x"), in.AddAttr("y")
	top, _ := p.ElemByName("t")
	in.AddLowerElem([]int{x, y}, top)
	m, _, err := in.Solve(0)
	if err != nil {
		t.Fatal(err)
	}
	if m == nil {
		t.Fatal("unsatisfiable")
	}
	if !in.Satisfies(m) {
		t.Fatal("reported solution does not satisfy")
	}
	// One of x,y must be at t (a,b alone have lub a/b... lub{a,b}=t works
	// too). Check the semantics directly instead:
	aE, _ := p.ElemByName("a")
	bE, _ := p.ElemByName("b")
	zE, _ := p.ElemByName("z")
	ok := in.Satisfies([]Elem{aE, bE})
	if !ok {
		t.Error("lub{a,b}=t should satisfy lub ≥ t")
	}
	if in.Satisfies([]Elem{aE, zE}) {
		t.Error("lub{a,z}=a must not satisfy lub ≥ t")
	}

	// On Figure 4(b), {c,d} have no least upper bound: all common upper
	// bounds must dominate rhs.
	p4 := Figure4B()
	in4 := NewInstance(p4)
	u, v := in4.AddAttr("u"), in4.AddAttr("v")
	c, _ := p4.ElemByName("c")
	in4.AddLowerElem([]int{u, v}, c)
	d, _ := p4.ElemByName("d")
	aT, _ := p4.ElemByName("a")
	// u=c, v=d: upper bounds {a,b}; both dominate c ✓.
	if !in4.Satisfies([]Elem{c, d}) {
		t.Error("ubs {a,b} all dominate c; constraint should hold")
	}
	// u=a, v=d: a is the only common upper bound... a ≥ c ✓.
	if !in4.Satisfies([]Elem{aT, d}) {
		t.Error("ub {a} dominates c")
	}
}

func TestSATSolverBasics(t *testing.T) {
	// (x) ∧ (¬x ∨ y): x=true, y=true.
	asg, ok := SolveSAT(2, []Clause{{0}, {^0, 1}})
	if !ok || !asg[0] || !asg[1] {
		t.Fatalf("asg=%v ok=%v", asg, ok)
	}
	// (x) ∧ (¬x): unsat.
	if _, ok := SolveSAT(1, []Clause{{0}, {^0}}); ok {
		t.Fatal("unsat instance declared sat")
	}
	// Empty formula: sat.
	if _, ok := SolveSAT(1, nil); !ok {
		t.Fatal("empty formula declared unsat")
	}
}

func TestSATSolverRandom(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		inst, err := workload.RandomSAT3(seed, 8, 30)
		if err != nil {
			t.Fatal(err)
		}
		clauses := toClauses(inst)
		asg, ok := SolveSAT(inst.NumVars, clauses)
		if ok && !CheckSAT(asg, clauses) {
			t.Fatalf("seed=%d: DPLL returned a non-satisfying assignment", seed)
		}
		// Cross-check with brute force on 8 variables.
		bruteOK := false
		for bitsv := 0; bitsv < 1<<inst.NumVars; bitsv++ {
			a := make([]bool, inst.NumVars)
			for j := range a {
				a[j] = bitsv>>uint(j)&1 == 1
			}
			if CheckSAT(a, clauses) {
				bruteOK = true
				break
			}
		}
		if ok != bruteOK {
			t.Fatalf("seed=%d: DPLL says %v, brute force says %v", seed, ok, bruteOK)
		}
	}
}

func toClauses(inst *workload.SAT3) []Clause {
	out := make([]Clause, len(inst.Clauses))
	for i, c := range inst.Clauses {
		out[i] = Clause{c[0], c[1], c[2]}
	}
	return out
}

// TestReductionFigure4 builds the paper's example (P∨Q)∧(Q∨¬R) and checks
// the construction's shape and that the reduced instance is solvable with
// a solution matching a satisfying assignment.
func TestReductionFigure4(t *testing.T) {
	r, clauses, err := Figure4A()
	if err != nil {
		t.Fatal(err)
	}
	p := r.Instance.P
	// 3 elements per variable + (1 + 3) per 2-literal clause.
	if want := 3*3 + 2*4; p.Size() != want {
		t.Errorf("poset size = %d, want %d", p.Size(), want)
	}
	if p.IsPartialLattice() {
		t.Error("reduction poset should not be a partial lattice")
	}
	m, _, err := r.Instance.Solve(0)
	if err != nil {
		t.Fatal(err)
	}
	if m == nil {
		t.Fatal("figure 4 instance unsatisfiable")
	}
	asg := r.Extract(m)
	if !CheckSAT(asg, clauses) {
		t.Fatalf("extracted assignment %v does not satisfy (P∨Q)∧(Q∨¬R)", asg)
	}
}

// TestReductionRoundTrip property-tests both directions of Theorem 6.1 on
// random 3-SAT instances: SAT ⇒ the embedded solution satisfies the
// min-poset instance; min-poset solvable ⇒ the extracted assignment
// satisfies the formula; and solvability coincides with DPLL's verdict.
func TestReductionRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		inst, err := workload.RandomSAT3(seed, 6, 26) // clause ratio >4.2: mix of sat/unsat
		if err != nil {
			t.Fatal(err)
		}
		clauses := toClauses(inst)
		r, err := Reduce(inst.NumVars, clauses)
		if err != nil {
			t.Fatal(err)
		}
		asg, satOK := SolveSAT(inst.NumVars, clauses)
		m, _, err := r.Instance.Solve(0)
		if err != nil {
			t.Fatal(err)
		}
		posetOK := m != nil
		if satOK != posetOK {
			t.Fatalf("seed=%d: SAT=%v but min-poset solvable=%v", seed, satOK, posetOK)
		}
		if satOK {
			embedded, err := r.Embed(asg, clauses)
			if err != nil {
				t.Fatalf("seed=%d: embed: %v", seed, err)
			}
			if !r.Instance.Satisfies(embedded) {
				t.Fatalf("seed=%d: embedded solution does not satisfy", seed)
			}
			extracted := r.Extract(m)
			if !CheckSAT(extracted, clauses) {
				t.Fatalf("seed=%d: extracted assignment does not satisfy formula", seed)
			}
		}
	}
}

// TestReduceValidation covers the construction's input checks.
func TestReduceValidation(t *testing.T) {
	if _, err := Reduce(0, nil); err == nil {
		t.Error("zero variables accepted")
	}
	if _, err := Reduce(2, []Clause{{}}); err == nil {
		t.Error("empty clause accepted")
	}
	if _, err := Reduce(2, []Clause{{0, 0}}); err == nil {
		t.Error("repeated variable accepted")
	}
	if _, err := Reduce(2, []Clause{{0, 5}}); err == nil {
		t.Error("undeclared variable accepted")
	}
}

// TestSolveBudget checks the node-budget escape hatch.
func TestSolveBudget(t *testing.T) {
	inst, err := workload.RandomSAT3(7, 12, 52)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Reduce(inst.NumVars, toClauses(inst))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Instance.Solve(1); err != ErrBudget {
		t.Fatalf("budget not enforced: %v", err)
	}
}

// TestMinimizeLocal checks that Solve's greedy minimization lowers results
// to locally minimal assignments.
func TestMinimizeLocal(t *testing.T) {
	p := MustFromCovers("chain",
		[]string{"hi", "mid", "lo"},
		map[string][]string{"hi": {"mid"}, "mid": {"lo"}})
	in := NewInstance(p)
	x := in.AddAttr("x")
	mid, _ := p.ElemByName("mid")
	in.AddLowerElem([]int{x}, mid)
	m, _, err := in.Solve(0)
	if err != nil {
		t.Fatal(err)
	}
	if m[x] != mid {
		t.Errorf("x = %s, want mid", p.ElemName(m[x]))
	}
}
