package poset

import "fmt"

// The min-poset problem (§6, Theorem 6.1): given a poset of security
// levels and constraints of the forms
//
//	A ≥ A′        (attribute dominates attribute)
//	A ≥ l         (attribute dominates a constant)
//	l ≥ A         (constant dominates an attribute — how the reduction's
//	               clause gadgets cap their attributes)
//	lub{A1,…,Ak} ≥ X   (complex)
//
// decide whether a satisfying assignment of poset elements to attributes
// exists (every satisfiable instance has a minimal solution, so the
// decision problem coincides with satisfiability). Because the order need
// not be a lattice, a complex constraint is interpreted in the strongest
// lattice-consistent way: the left-hand side must have at least one common
// upper bound, and every common upper bound must dominate the right-hand
// side; on a lattice this is exactly lub{…} ≥ X.

// MPConstraint is one min-poset constraint. LHS lists attribute indices;
// exactly one of RHSAttr ≥ 0 or RHSElem ≥ 0 is set for lower-bound
// constraints. Upper-bound constraints use Upper=true with a single LHS
// attribute and RHSElem as the cap.
type MPConstraint struct {
	LHS     []int
	RHSAttr int  // -1 when the rhs is an element
	RHSElem Elem // valid when RHSAttr < 0, or when Upper
	Upper   bool // RHSElem ≥ LHS[0]
}

// Instance is a min-poset problem instance.
type Instance struct {
	P         *Poset
	AttrNames []string
	Cons      []MPConstraint
}

// NewInstance returns an empty instance over the poset.
func NewInstance(p *Poset) *Instance { return &Instance{P: p} }

// AddAttr declares an attribute and returns its index.
func (in *Instance) AddAttr(name string) int {
	in.AttrNames = append(in.AttrNames, name)
	return len(in.AttrNames) - 1
}

// AddLowerAttr adds lub{lhs} ≥ rhs-attribute.
func (in *Instance) AddLowerAttr(lhs []int, rhs int) {
	in.Cons = append(in.Cons, MPConstraint{LHS: lhs, RHSAttr: rhs, RHSElem: -1})
}

// AddLowerElem adds lub{lhs} ≥ element.
func (in *Instance) AddLowerElem(lhs []int, e Elem) {
	in.Cons = append(in.Cons, MPConstraint{LHS: lhs, RHSAttr: -1, RHSElem: e})
}

// AddUpper adds element ≥ attribute.
func (in *Instance) AddUpper(attr int, e Elem) {
	in.Cons = append(in.Cons, MPConstraint{LHS: []int{attr}, RHSAttr: -1, RHSElem: e, Upper: true})
}

// Satisfies reports whether the assignment (one element per attribute)
// satisfies every constraint.
func (in *Instance) Satisfies(m []Elem) bool {
	for _, c := range in.Cons {
		if !in.satisfied(c, m) {
			return false
		}
	}
	return true
}

func (in *Instance) satisfied(c MPConstraint, m []Elem) bool {
	p := in.P
	if c.Upper {
		return p.GE(c.RHSElem, m[c.LHS[0]])
	}
	rhs := c.RHSElem
	if c.RHSAttr >= 0 {
		rhs = m[c.RHSAttr]
	}
	if len(c.LHS) == 1 {
		return p.GE(m[c.LHS[0]], rhs)
	}
	// Complex: common upper bounds of the lhs must exist and all dominate
	// the rhs; equivalently, every *minimal* common upper bound dominates
	// it.
	ub := p.up[m[c.LHS[0]]]
	for _, a := range c.LHS[1:] {
		ub = ub.and(p.up[m[a]])
	}
	if ub.empty() {
		return false
	}
	for _, u := range ub.elems() {
		if !p.GE(u, rhs) {
			return false
		}
	}
	return true
}

// SolveStats reports search effort, used by the E7 scaling experiment.
type SolveStats struct {
	Nodes      int // search-tree nodes visited
	Backtracks int
}

// ErrBudget is returned when the node budget is exhausted before the
// search concludes.
var ErrBudget = fmt.Errorf("poset: search budget exhausted")

// Solve decides the instance by backtracking search with forward checking:
// per-attribute candidate domains are seeded from the constant constraints
// (upper bounds and simple lower bounds against elements), each assignment
// prunes the domains of attributes related through simple attribute-to-
// attribute constraints, and the next attribute is always one with the
// smallest remaining domain (fail-first). Complex constraints are verified
// as soon as all of their attributes are assigned. budget caps the number
// of search nodes (0 means unlimited); exceeding it returns ErrBudget.
//
// On success the returned assignment has additionally been greedily
// minimized: no single attribute can be lowered to any strictly smaller
// element without violating a constraint.
func (in *Instance) Solve(budget int) ([]Elem, *SolveStats, error) {
	p := in.P
	n := len(in.AttrNames)
	stats := &SolveStats{}
	if n == 0 {
		return []Elem{}, stats, nil
	}

	// Seed domains from constant constraints, low elements first (biasing
	// the search toward low assignments).
	domains := make([][]Elem, n)
	all := make([]Elem, p.Size())
	for i := range all {
		all[i] = Elem(i)
	}
	for a := 0; a < n; a++ {
		domains[a] = all
	}
	// Simple attribute-to-attribute edges for forward checking:
	// geEdges[a] lists pairs (b, dir) meaning a ≥ b (dir=+1) or b ≥ a
	// (dir=-1) must hold.
	type edge struct {
		other int
		self  int // +1: self ≥ other; -1: other ≥ self
	}
	geEdges := make([][]edge, n)
	// Complex (or multi-attribute) constraints checked on completion:
	// attrsOf[c] lists the distinct attributes of constraint c.
	var lateCons []MPConstraint
	lateAttrs := make([][]int, 0)
	lateOn := make([][]int, n) // attr -> indices into lateCons
	unassignedIn := []int{}

	for _, c := range in.Cons {
		switch {
		case c.Upper:
			domains[c.LHS[0]] = filterElems(domains[c.LHS[0]], func(e Elem) bool {
				return p.GE(c.RHSElem, e)
			})
		case len(c.LHS) == 1 && c.RHSAttr < 0:
			domains[c.LHS[0]] = filterElems(domains[c.LHS[0]], func(e Elem) bool {
				return p.GE(e, c.RHSElem)
			})
		case len(c.LHS) == 1 && c.RHSAttr >= 0:
			a, b := c.LHS[0], c.RHSAttr
			geEdges[a] = append(geEdges[a], edge{other: b, self: +1})
			geEdges[b] = append(geEdges[b], edge{other: a, self: -1})
		default:
			idx := len(lateCons)
			lateCons = append(lateCons, c)
			seen := map[int]bool{}
			var attrs []int
			for _, a := range c.LHS {
				if !seen[a] {
					seen[a] = true
					attrs = append(attrs, a)
				}
			}
			if c.RHSAttr >= 0 && !seen[c.RHSAttr] {
				attrs = append(attrs, c.RHSAttr)
			}
			lateAttrs = append(lateAttrs, attrs)
			unassignedIn = append(unassignedIn, len(attrs))
			for _, a := range attrs {
				lateOn[a] = append(lateOn[a], idx)
			}
		}
	}
	for a := 0; a < n; a++ {
		if len(domains[a]) == 0 {
			return nil, stats, nil // trivially unsatisfiable
		}
	}

	m := make([]Elem, n)
	assigned := make([]bool, n)
	type undoEntry struct {
		attr int
		dom  []Elem
	}

	var dfs func(depth int) (bool, error)
	dfs = func(depth int) (bool, error) {
		if depth == n {
			return true, nil
		}
		// Fail-first: smallest remaining domain.
		a := -1
		for i := 0; i < n; i++ {
			if !assigned[i] && (a < 0 || len(domains[i]) < len(domains[a])) {
				a = i
			}
		}
		for _, e := range domains[a] {
			stats.Nodes++
			if budget > 0 && stats.Nodes > budget {
				return false, ErrBudget
			}
			m[a] = e
			assigned[a] = true
			var undo []undoEntry
			ok := true
			// Forward-check simple edges.
			for _, ed := range geEdges[a] {
				if assigned[ed.other] {
					if ed.self > 0 && !p.GE(e, m[ed.other]) {
						ok = false
					}
					if ed.self < 0 && !p.GE(m[ed.other], e) {
						ok = false
					}
					if !ok {
						break
					}
					continue
				}
				old := domains[ed.other]
				var pruned []Elem
				if ed.self > 0 { // a ≥ other: other must be ≤ e
					pruned = filterElems(old, func(x Elem) bool { return p.GE(e, x) })
				} else { // other ≥ a: other must be ≥ e
					pruned = filterElems(old, func(x Elem) bool { return p.GE(x, e) })
				}
				if len(pruned) != len(old) {
					undo = append(undo, undoEntry{ed.other, old})
					domains[ed.other] = pruned
					if len(pruned) == 0 {
						ok = false
						break
					}
				}
			}
			// Check complex constraints that just became fully assigned.
			if ok {
				for _, ci := range lateOn[a] {
					unassignedIn[ci]--
					if unassignedIn[ci] == 0 && !in.satisfied(lateCons[ci], m) {
						ok = false
					}
				}
			} else {
				for _, ci := range lateOn[a] {
					unassignedIn[ci]--
				}
			}
			if ok {
				done, err := dfs(depth + 1)
				if err != nil || done {
					return done, err
				}
			}
			// Undo.
			for _, ci := range lateOn[a] {
				unassignedIn[ci]++
			}
			for i := len(undo) - 1; i >= 0; i-- {
				domains[undo[i].attr] = undo[i].dom
			}
			assigned[a] = false
		}
		stats.Backtracks++
		return false, nil
	}
	found, err := dfs(0)
	if err != nil {
		return nil, stats, err
	}
	if !found {
		return nil, stats, nil
	}
	in.minimize(m)
	return m, stats, nil
}

// minimize greedily lowers single attributes while the assignment remains
// satisfying. The result is locally minimal; on non-lattice posets true
// (global) minimality may require simultaneous moves, which MinimalBelow
// checks exhaustively for small instances.
func (in *Instance) minimize(m []Elem) {
	p := in.P
	for changed := true; changed; {
		changed = false
		for a := range m {
			for _, lower := range p.Below(m[a]) {
				old := m[a]
				m[a] = lower
				if in.Satisfies(m) {
					changed = true
					break
				}
				m[a] = old
			}
		}
	}
}

// MinimalBelow reports whether any satisfying assignment lies strictly
// below m pointwise, by exhaustive enumeration of the down-sets (small
// instances only).
func (in *Instance) MinimalBelow(m []Elem) (isMinimal bool, err error) {
	p := in.P
	n := len(m)
	down := make([][]Elem, n)
	total := 1.0
	for a := 0; a < n; a++ {
		down[a] = append([]Elem{m[a]}, p.Below(m[a])...)
		total *= float64(len(down[a]))
		if total > 5_000_000 {
			return false, fmt.Errorf("poset: down-set enumeration too large")
		}
	}
	cur := make([]Elem, n)
	var found bool
	var walk func(i int)
	walk = func(i int) {
		if found {
			return
		}
		if i == n {
			same := true
			for a := range cur {
				if cur[a] != m[a] {
					same = false
					break
				}
			}
			if !same && in.Satisfies(cur) {
				found = true
			}
			return
		}
		for _, e := range down[i] {
			cur[i] = e
			walk(i + 1)
		}
	}
	walk(0)
	return !found, nil
}

func filterElems(in []Elem, keep func(Elem) bool) []Elem {
	out := make([]Elem, 0, len(in))
	for _, e := range in {
		if keep(e) {
			out = append(out, e)
		}
	}
	return out
}
