package poset

import (
	"strings"
	"testing"
)

// FuzzParseDIMACS checks the DIMACS parser never panics and that accepted
// formulas are well-formed (literals in range, header honest).
func FuzzParseDIMACS(f *testing.F) {
	for _, seed := range []string{
		"p cnf 3 2\n1 2 0\n2 -3 0\n",
		"c comment\np cnf 1 1\n1 0\n",
		"p cnf 2 1\n1 2\n-1 0\n",
		"p cnf 0 0\n",
		"p cnf 2 1\n0\n",
		"garbage",
		"p cnf 9999 1\n9999 0\n",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		numVars, clauses, err := ParseDIMACS(strings.NewReader(input))
		if err != nil {
			return
		}
		for _, cl := range clauses {
			if len(cl) == 0 {
				t.Fatalf("accepted empty clause from %q", input)
			}
			for _, lit := range cl {
				v, _ := litVar(lit)
				if v < 0 || v >= numVars {
					t.Fatalf("accepted out-of-range literal from %q", input)
				}
			}
		}
		// Accepted formulas must round-trip.
		var sb strings.Builder
		if err := WriteDIMACS(&sb, numVars, clauses); err != nil {
			t.Fatal(err)
		}
		nv2, cl2, err := ParseDIMACS(strings.NewReader(sb.String()))
		if err != nil || nv2 != numVars || len(cl2) != len(clauses) {
			t.Fatalf("round trip failed for %q: %v", input, err)
		}
	})
}
