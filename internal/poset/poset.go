// Package poset implements arbitrary finite partial orders and the
// min-poset problem of §6 of the paper: minimal constraint-satisfying
// assignments over a partial order that need not be a lattice. Theorem 6.1
// shows min-poset NP-complete via a reduction from 3-SAT; this package
// contains the poset machinery, an exponential backtracking solver, a DPLL
// 3-SAT solver used as the reduction's substrate and oracle, and the
// reduction itself (reduction.go), including the Figure 4 fixtures.
package poset

import (
	"fmt"
	"math/bits"
	"sort"
)

// Elem identifies one element of a Poset (a dense index).
type Elem int

// Poset is a finite partial order given by its cover relation, with the
// reflexive-transitive closure precomputed as bitsets for O(n/64)
// dominance tests.
type Poset struct {
	name   string
	names  []string
	index  map[string]int
	covers [][]Elem // covers[i]: elements immediately below i
	above  [][]Elem // above[i]: elements immediately above i
	up     []pbits  // up[i] = {j : j ≥ i}
	down   []pbits  // down[i] = {j : i ≥ j}
}

type pbits []uint64

func newPbits(n int) pbits     { return make(pbits, (n+63)/64) }
func (b pbits) set(i int)      { b[i/64] |= 1 << (uint(i) % 64) }
func (b pbits) has(i int) bool { return b[i/64]&(1<<(uint(i)%64)) != 0 }
func (b pbits) or(o pbits) {
	for i := range b {
		b[i] |= o[i]
	}
}
func (b pbits) and(o pbits) pbits {
	c := make(pbits, len(b))
	for i := range b {
		c[i] = b[i] & o[i]
	}
	return c
}
func (b pbits) empty() bool {
	for _, w := range b {
		if w != 0 {
			return false
		}
	}
	return true
}
func (b pbits) elems() []Elem {
	var out []Elem
	for wi, w := range b {
		for ; w != 0; w &= w - 1 {
			out = append(out, Elem(wi*64+bits.TrailingZeros64(w)))
		}
	}
	return out
}

// FromCovers builds a poset from named elements and a cover relation
// (covers[x] lists the elements immediately below x). Unlike
// lattice.NewExplicit there is no requirement of unique extremes or
// existing lubs — any finite DAG of covers is accepted.
func FromCovers(name string, names []string, covers map[string][]string) (*Poset, error) {
	n := len(names)
	if n == 0 {
		return nil, fmt.Errorf("poset %q: no elements", name)
	}
	p := &Poset{
		name:   name,
		names:  append([]string(nil), names...),
		index:  make(map[string]int, n),
		covers: make([][]Elem, n),
		above:  make([][]Elem, n),
		up:     make([]pbits, n),
		down:   make([]pbits, n),
	}
	for i, nm := range names {
		if nm == "" {
			return nil, fmt.Errorf("poset %q: empty element name", name)
		}
		if _, dup := p.index[nm]; dup {
			return nil, fmt.Errorf("poset %q: duplicate element %q", name, nm)
		}
		p.index[nm] = i
	}
	for from, tos := range covers {
		i, ok := p.index[from]
		if !ok {
			return nil, fmt.Errorf("poset %q: cover source %q not declared", name, from)
		}
		for _, to := range tos {
			j, ok := p.index[to]
			if !ok {
				return nil, fmt.Errorf("poset %q: cover target %q not declared", name, to)
			}
			if i == j {
				return nil, fmt.Errorf("poset %q: self-cover on %q", name, from)
			}
			p.covers[i] = append(p.covers[i], Elem(j))
			p.above[j] = append(p.above[j], Elem(i))
		}
	}
	// Topological order (top first) for closure computation.
	indeg := make([]int, n)
	for i := 0; i < n; i++ {
		for range p.above[i] {
			indeg[i]++
		}
	}
	queue := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	var order []int
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		order = append(order, u)
		for _, v := range p.covers[u] {
			indeg[v]--
			if indeg[v] == 0 {
				queue = append(queue, int(v))
			}
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("poset %q: cover relation is cyclic", name)
	}
	for i := 0; i < n; i++ {
		p.up[i] = newPbits(n)
		p.up[i].set(i)
	}
	for _, u := range order {
		for _, v := range p.covers[u] {
			p.up[v].or(p.up[u])
		}
	}
	for i := 0; i < n; i++ {
		p.down[i] = newPbits(n)
	}
	for j := 0; j < n; j++ {
		for _, w := range p.up[j].elems() {
			p.down[w].set(j)
		}
	}
	return p, nil
}

// MustFromCovers is FromCovers that panics on error, for static fixtures.
func MustFromCovers(name string, names []string, covers map[string][]string) *Poset {
	p, err := FromCovers(name, names, covers)
	if err != nil {
		panic(err)
	}
	return p
}

// Name returns the poset's name.
func (p *Poset) Name() string { return p.name }

// Size returns the number of elements.
func (p *Poset) Size() int { return len(p.names) }

// GE reports a ≥ b.
func (p *Poset) GE(a, b Elem) bool { return p.up[b].has(int(a)) }

// ElemName returns the name of an element.
func (p *Poset) ElemName(e Elem) string { return p.names[e] }

// ElemByName looks an element up by name.
func (p *Poset) ElemByName(name string) (Elem, bool) {
	i, ok := p.index[name]
	return Elem(i), ok
}

// Covers returns the elements immediately below e.
func (p *Poset) Covers(e Elem) []Elem { return p.covers[e] }

// Below returns all elements strictly below e.
func (p *Poset) Below(e Elem) []Elem {
	var out []Elem
	for _, x := range p.down[e].elems() {
		if x != e {
			out = append(out, x)
		}
	}
	return out
}

// UpperBounds returns the common upper bounds of a and b.
func (p *Poset) UpperBounds(a, b Elem) []Elem {
	return p.up[a].and(p.up[b]).elems()
}

// MinimalUpperBounds returns the minimal elements among the common upper
// bounds of a and b. A pair with two or more minimal upper bounds is what
// makes the order a non-lattice.
func (p *Poset) MinimalUpperBounds(a, b Elem) []Elem {
	ubs := p.UpperBounds(a, b)
	var out []Elem
	for _, u := range ubs {
		minimal := true
		for _, v := range ubs {
			if v != u && p.GE(u, v) {
				minimal = false
				break
			}
		}
		if minimal {
			out = append(out, u)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// IsLattice reports whether every pair of elements has a least upper bound
// and a greatest lower bound (which, for a finite order, requires unique
// top and bottom).
func (p *Poset) IsLattice() bool {
	n := len(p.names)
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			if len(p.MinimalUpperBounds(Elem(a), Elem(b))) != 1 {
				return false
			}
			if len(p.MaximalLowerBounds(Elem(a), Elem(b))) != 1 {
				return false
			}
		}
	}
	return true
}

// IsPartialLattice reports the paper's §6 condition: any two elements that
// have an upper bound have a least one (and dually for lower bounds).
// Algorithm 3.1 extends to partial lattices; arbitrary posets violating
// this condition are where min-poset becomes NP-complete.
func (p *Poset) IsPartialLattice() bool {
	n := len(p.names)
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			if ubs := p.MinimalUpperBounds(Elem(a), Elem(b)); len(ubs) > 1 {
				return false
			}
			if lbs := p.MaximalLowerBounds(Elem(a), Elem(b)); len(lbs) > 1 {
				return false
			}
		}
	}
	return true
}

// MaximalLowerBounds returns the maximal elements among the common lower
// bounds of a and b.
func (p *Poset) MaximalLowerBounds(a, b Elem) []Elem {
	lbs := p.down[a].and(p.down[b]).elems()
	var out []Elem
	for _, u := range lbs {
		maximal := true
		for _, v := range lbs {
			if v != u && p.GE(v, u) {
				maximal = false
				break
			}
		}
		if maximal {
			out = append(out, u)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Maximal returns the maximal elements of the poset.
func (p *Poset) Maximal() []Elem {
	var out []Elem
	for i := range p.names {
		if len(p.above[i]) == 0 {
			out = append(out, Elem(i))
		}
	}
	return out
}

// Minimal returns the minimal elements of the poset.
func (p *Poset) Minimal() []Elem {
	var out []Elem
	for i := range p.names {
		if len(p.covers[i]) == 0 {
			out = append(out, Elem(i))
		}
	}
	return out
}
