package poset

// This file contains a small DPLL SAT solver over CNF instances. It is the
// substrate of the Theorem 6.1 experiments: the reduction maps SAT to
// min-poset, and DPLL serves as the independent oracle that the reduction
// preserves satisfiability in both directions.

// Clause is one CNF clause: positive literal i is variable i (0-based),
// negative is ^i (bitwise complement).
type Clause []int

// litVar returns the variable of a literal and whether it is positive.
func litVar(lit int) (v int, positive bool) {
	if lit < 0 {
		return ^lit, false
	}
	return lit, true
}

// SolveSAT decides a CNF instance with DPLL (unit propagation plus
// splitting) and returns a satisfying assignment when one exists.
// Unconstrained variables default to false.
func SolveSAT(numVars int, clauses []Clause) (assignment []bool, ok bool) {
	assign := make([]int8, numVars) // 0 unassigned, 1 true, -1 false
	if !dpll(assign, clauses) {
		return nil, false
	}
	out := make([]bool, numVars)
	for i, a := range assign {
		out[i] = a == 1
	}
	return out, true
}

func dpll(assign []int8, clauses []Clause) bool {
	// Unit propagation to fixpoint, recording assignments for rollback.
	var trail []int
	undo := func() {
		for _, v := range trail {
			assign[v] = 0
		}
	}
	for {
		progress := false
		for _, cl := range clauses {
			unassigned := 0
			unassignedLit := 0
			satisfied := false
			for _, lit := range cl {
				v, pos := litVar(lit)
				switch {
				case assign[v] == 0:
					unassigned++
					unassignedLit = lit
				case (assign[v] == 1) == pos:
					satisfied = true
				}
				if satisfied {
					break
				}
			}
			if satisfied {
				continue
			}
			switch unassigned {
			case 0:
				undo()
				return false
			case 1:
				v, pos := litVar(unassignedLit)
				if pos {
					assign[v] = 1
				} else {
					assign[v] = -1
				}
				trail = append(trail, v)
				progress = true
			}
		}
		if !progress {
			break
		}
	}
	// Branch on the first unassigned variable.
	branch := -1
	for v, a := range assign {
		if a == 0 {
			branch = v
			break
		}
	}
	if branch == -1 {
		// All variables assigned: the final propagation pass above checked
		// every clause and found no conflict, so the formula is satisfied.
		return true
	}
	for _, val := range []int8{1, -1} {
		assign[branch] = val
		if dpll(assign, clauses) {
			return true
		}
	}
	assign[branch] = 0
	undo()
	return false
}

// CheckSAT reports whether an assignment satisfies all clauses.
func CheckSAT(assignment []bool, clauses []Clause) bool {
	for _, cl := range clauses {
		ok := false
		for _, lit := range cl {
			v, pos := litVar(lit)
			if assignment[v] == pos {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}
