package poset

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomPoset builds a random DAG poset over n elements (edges only from
// lower to higher index, read as higher-index covers lower-index).
func randomPoset(rng *rand.Rand, n int) *Poset {
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("e%02d", i)
	}
	covers := make(map[string][]string)
	for hi := 1; hi < n; hi++ {
		for lo := 0; lo < hi; lo++ {
			if rng.Intn(3) == 0 {
				covers[names[hi]] = append(covers[names[hi]], names[lo])
			}
		}
	}
	return MustFromCovers("rand", names, covers)
}

// TestPosetOrderLaws property-tests reflexivity, antisymmetry, and
// transitivity of GE on random posets.
func TestPosetOrderLaws(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomPoset(rng, 2+rng.Intn(12))
		n := p.Size()
		for a := 0; a < n; a++ {
			if !p.GE(Elem(a), Elem(a)) {
				return false
			}
			for b := 0; b < n; b++ {
				if a != b && p.GE(Elem(a), Elem(b)) && p.GE(Elem(b), Elem(a)) {
					return false
				}
				for c := 0; c < n; c++ {
					if p.GE(Elem(a), Elem(b)) && p.GE(Elem(b), Elem(c)) && !p.GE(Elem(a), Elem(c)) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestBoundsConsistency property-tests that MinimalUpperBounds and
// MaximalLowerBounds return bounds that actually bound and are
// minimal/maximal.
func TestBoundsConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomPoset(rng, 2+rng.Intn(10))
		n := p.Size()
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				mubs := p.MinimalUpperBounds(Elem(a), Elem(b))
				for _, u := range mubs {
					if !p.GE(u, Elem(a)) || !p.GE(u, Elem(b)) {
						return false
					}
					for _, v := range mubs {
						if u != v && (p.GE(u, v) || p.GE(v, u)) {
							return false // must be an antichain
						}
					}
				}
				mlbs := p.MaximalLowerBounds(Elem(a), Elem(b))
				for _, u := range mlbs {
					if !p.GE(Elem(a), u) || !p.GE(Elem(b), u) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestSolveAgainstBruteForce differentially tests the forward-checking
// solver against exhaustive assignment enumeration on tiny random
// instances with all constraint forms.
func TestSolveAgainstBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomPoset(rng, 2+rng.Intn(6))
		in := NewInstance(p)
		nAttrs := 1 + rng.Intn(3)
		for i := 0; i < nAttrs; i++ {
			in.AddAttr(fmt.Sprintf("w%d", i))
		}
		for i := 0; i < 1+rng.Intn(4); i++ {
			switch rng.Intn(4) {
			case 0:
				in.AddLowerElem([]int{rng.Intn(nAttrs)}, Elem(rng.Intn(p.Size())))
			case 1:
				in.AddUpper(rng.Intn(nAttrs), Elem(rng.Intn(p.Size())))
			case 2:
				a, b := rng.Intn(nAttrs), rng.Intn(nAttrs)
				if a != b {
					in.AddLowerAttr([]int{a}, b)
				}
			case 3:
				if nAttrs >= 2 {
					a, b := rng.Intn(nAttrs), rng.Intn(nAttrs)
					if a != b {
						in.AddLowerElem([]int{a, b}, Elem(rng.Intn(p.Size())))
					}
				}
			}
		}
		m, _, err := in.Solve(0)
		if err != nil {
			return false
		}
		// Brute-force: does any assignment satisfy?
		total := 1
		for i := 0; i < nAttrs; i++ {
			total *= p.Size()
		}
		bruteSat := false
		cur := make([]Elem, nAttrs)
		for code := 0; code < total && !bruteSat; code++ {
			c := code
			for i := 0; i < nAttrs; i++ {
				cur[i] = Elem(c % p.Size())
				c /= p.Size()
			}
			if in.Satisfies(cur) {
				bruteSat = true
			}
		}
		if (m != nil) != bruteSat {
			t.Logf("seed %d: solver=%v brute=%v", seed, m != nil, bruteSat)
			return false
		}
		if m != nil && !in.Satisfies(m) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestReductionPosetShape property-tests structural invariants of the
// Theorem 6.1 construction on random formulas: height one, the expected
// element count, and clause elements dominated by exactly one Ci plus the
// matching polarity elements.
func TestReductionPosetShape(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nVars := 3 + rng.Intn(4)
		nClauses := 1 + rng.Intn(5)
		var clauses []Clause
		for i := 0; i < nClauses; i++ {
			perm := rng.Perm(nVars)
			cl := Clause{}
			for j := 0; j < 3; j++ {
				v := perm[j]
				if rng.Intn(2) == 1 {
					cl = append(cl, ^v)
				} else {
					cl = append(cl, v)
				}
			}
			clauses = append(clauses, cl)
		}
		r, err := Reduce(nVars, clauses)
		if err != nil {
			return false
		}
		p := r.Instance.P
		if p.Size() != 3*nVars+8*nClauses {
			return false // 1 Ci + 7 satisfying assignments per 3-clause
		}
		// Height one: nothing below a covered element.
		for e := 0; e < p.Size(); e++ {
			for _, c := range p.Covers(Elem(e)) {
				if len(p.Covers(c)) != 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
