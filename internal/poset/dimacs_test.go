package poset

import (
	"strings"
	"testing"
)

func TestParseDIMACS(t *testing.T) {
	src := `
c example formula
p cnf 3 2
1 2 0
2 -3 0
`
	numVars, clauses, err := ParseDIMACS(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if numVars != 3 || len(clauses) != 2 {
		t.Fatalf("shape: %d vars, %d clauses", numVars, len(clauses))
	}
	if clauses[0][0] != 0 || clauses[0][1] != 1 {
		t.Errorf("clause 0 = %v", clauses[0])
	}
	if clauses[1][1] != ^2 {
		t.Errorf("clause 1 = %v (want negated var 2)", clauses[1])
	}
}

func TestParseDIMACSMultiline(t *testing.T) {
	src := "p cnf 4 1\n1 2\n3 -4 0\n"
	_, clauses, err := ParseDIMACS(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(clauses) != 1 || len(clauses[0]) != 4 {
		t.Fatalf("clauses = %v", clauses)
	}
}

func TestParseDIMACSErrors(t *testing.T) {
	for _, bad := range []string{
		"",                   // no header
		"p cnf x 1\n1 0\n",   // bad var count
		"p cnf 2 z\n1 0\n",   // bad clause count
		"p dnf 2 1\n1 0\n",   // wrong format tag
		"1 0\np cnf 2 1\n",   // clause before header
		"p cnf 2 1\n1 q 0\n", // bad literal
		"p cnf 2 1\n3 0\n",   // out-of-range literal
		"p cnf 2 1\n-3 0\n",  // out-of-range negative
		"p cnf 2 1\n0\n",     // empty clause
		"p cnf 2 2\n1 0\n",   // clause count mismatch
		"p cnf 2 1\n1 2\n",   // unterminated clause
	} {
		if _, _, err := ParseDIMACS(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseDIMACS accepted %q", bad)
		}
	}
}

func TestDIMACSRoundTrip(t *testing.T) {
	clauses := []Clause{{0, ^1, 2}, {^0, 1}, {2}}
	var sb strings.Builder
	if err := WriteDIMACS(&sb, 3, clauses); err != nil {
		t.Fatal(err)
	}
	numVars, back, err := ParseDIMACS(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if numVars != 3 || len(back) != len(clauses) {
		t.Fatalf("round trip shape: %d vars, %d clauses", numVars, len(back))
	}
	for i := range clauses {
		if len(back[i]) != len(clauses[i]) {
			t.Fatalf("clause %d length", i)
		}
		for j := range clauses[i] {
			if back[i][j] != clauses[i][j] {
				t.Fatalf("clause %d literal %d: %d != %d", i, j, back[i][j], clauses[i][j])
			}
		}
	}
}
