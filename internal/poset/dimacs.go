package poset

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParseDIMACS reads a CNF formula in DIMACS format: a header line
// "p cnf <vars> <clauses>", clauses as whitespace-separated literals
// terminated by 0 (1-based, negative for negated), and comment lines
// starting with 'c'. Clauses may span lines. The declared clause count is
// checked against the clauses actually read.
func ParseDIMACS(r io.Reader) (numVars int, clauses []Clause, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	declaredClauses := -1
	var current Clause
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "c") {
			continue
		}
		if strings.HasPrefix(line, "p") {
			fields := strings.Fields(line)
			if len(fields) != 4 || fields[1] != "cnf" {
				return 0, nil, fmt.Errorf("dimacs line %d: malformed header %q", lineno, line)
			}
			if numVars, err = strconv.Atoi(fields[2]); err != nil || numVars < 1 {
				return 0, nil, fmt.Errorf("dimacs line %d: bad variable count %q", lineno, fields[2])
			}
			if declaredClauses, err = strconv.Atoi(fields[3]); err != nil || declaredClauses < 0 {
				return 0, nil, fmt.Errorf("dimacs line %d: bad clause count %q", lineno, fields[3])
			}
			continue
		}
		if declaredClauses < 0 {
			return 0, nil, fmt.Errorf("dimacs line %d: clause before header", lineno)
		}
		for _, tok := range strings.Fields(line) {
			lit, err := strconv.Atoi(tok)
			if err != nil {
				return 0, nil, fmt.Errorf("dimacs line %d: bad literal %q", lineno, tok)
			}
			switch {
			case lit == 0:
				if len(current) == 0 {
					return 0, nil, fmt.Errorf("dimacs line %d: empty clause", lineno)
				}
				clauses = append(clauses, current)
				current = nil
			case lit > 0:
				if lit > numVars {
					return 0, nil, fmt.Errorf("dimacs line %d: literal %d out of range", lineno, lit)
				}
				current = append(current, lit-1)
			default:
				if -lit > numVars {
					return 0, nil, fmt.Errorf("dimacs line %d: literal %d out of range", lineno, lit)
				}
				current = append(current, ^(-lit - 1))
			}
		}
	}
	if err := sc.Err(); err != nil {
		return 0, nil, err
	}
	if len(current) != 0 {
		return 0, nil, fmt.Errorf("dimacs: trailing clause without terminating 0")
	}
	if declaredClauses < 0 {
		return 0, nil, fmt.Errorf("dimacs: missing header")
	}
	if len(clauses) != declaredClauses {
		return 0, nil, fmt.Errorf("dimacs: header declares %d clauses, read %d", declaredClauses, len(clauses))
	}
	return numVars, clauses, nil
}

// WriteDIMACS renders a CNF formula in DIMACS format.
func WriteDIMACS(w io.Writer, numVars int, clauses []Clause) error {
	var b strings.Builder
	fmt.Fprintf(&b, "p cnf %d %d\n", numVars, len(clauses))
	for _, cl := range clauses {
		for _, lit := range cl {
			v, pos := litVar(lit)
			if pos {
				fmt.Fprintf(&b, "%d ", v+1)
			} else {
				fmt.Fprintf(&b, "-%d ", v+1)
			}
		}
		b.WriteString("0\n")
	}
	_, err := io.WriteString(w, b.String())
	return err
}
