package poset

import (
	"fmt"
	"math/rand"
	"testing"

	"minup/internal/constraint"
	"minup/internal/core"
	"minup/internal/lattice"
)

// latticeAsPoset rebuilds an enumerable lattice as a Poset with the same
// element names (lattices are posets; the min-poset machinery must agree
// with the specialized solver on them).
func latticeAsPoset(t *testing.T, l lattice.Enumerable) *Poset {
	t.Helper()
	var names []string
	covers := make(map[string][]string)
	for _, e := range l.Elements() {
		names = append(names, l.FormatLevel(e))
		for _, c := range l.Covers(e) {
			covers[l.FormatLevel(e)] = append(covers[l.FormatLevel(e)], l.FormatLevel(c))
		}
	}
	p, err := FromCovers("bridge", names, covers)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestBridgeLatticeInstances differentially tests the min-poset solver
// against Algorithm 3.1 on random lattice instances: both must agree on
// solvability (always solvable for lower-bound constraints) and the
// min-poset solution must satisfy exactly the same constraints; on
// simple-only acyclic instances, where the minimal solution is unique,
// the two must coincide level for level.
func TestBridgeLatticeInstances(t *testing.T) {
	lat := lattice.FigureOneB()
	p := latticeAsPoset(t, lat)
	toElem := func(l lattice.Level) Elem {
		e, ok := p.ElemByName(lat.FormatLevel(l))
		if !ok {
			t.Fatalf("element %s missing", lat.FormatLevel(l))
		}
		return e
	}
	if !p.IsLattice() {
		t.Fatal("bridged lattice is not a lattice poset")
	}

	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 30; trial++ {
		// Random simple-only acyclic instance built in both worlds.
		s := constraint.NewSet(lat)
		in := NewInstance(p)
		const n = 6
		attrs := make([]constraint.Attr, n)
		for i := 0; i < n; i++ {
			attrs[i] = s.MustAttr(fmt.Sprintf("w%d", i))
			in.AddAttr(fmt.Sprintf("w%d", i))
		}
		elems := lat.Elements()
		for i := 0; i < 8; i++ {
			lo := rng.Intn(n)
			if rng.Intn(2) == 0 || lo == n-1 {
				lvl := elems[rng.Intn(len(elems))]
				s.MustAdd([]constraint.Attr{attrs[lo]}, constraint.LevelRHS(lvl))
				in.AddLowerElem([]int{lo}, toElem(lvl))
			} else {
				hi := lo + 1 + rng.Intn(n-lo-1)
				s.MustAdd([]constraint.Attr{attrs[lo]}, constraint.AttrRHS(attrs[hi]))
				in.AddLowerAttr([]int{lo}, hi)
			}
		}

		res := core.MustSolve(s, core.Options{})
		m, _, err := in.Solve(0)
		if err != nil {
			t.Fatal(err)
		}
		if m == nil {
			t.Fatalf("trial %d: min-poset found lattice instance unsolvable", trial)
		}
		// Simple acyclic ⇒ unique minimal solution; the greedy minimizer
		// reaches it on a lattice instance with only simple constraints.
		for i := 0; i < n; i++ {
			want := lat.FormatLevel(res.Assignment[attrs[i]])
			got := p.ElemName(m[i])
			if got != want {
				t.Fatalf("trial %d: attribute w%d: poset %s vs lattice %s",
					trial, i, got, want)
			}
		}
	}
}
