package poset

import (
	"fmt"
	"strings"
)

// This file implements the Theorem 6.1 reduction from SAT to min-poset,
// including the partial order of Figure 4(a). For a CNF formula it builds:
//
// Elements:
//   - per variable j: "Pj" (undecided), "Pj+" (true), "Pj-" (false);
//   - per clause i: "Ci", plus one element per truth assignment T of the
//     clause's variables that satisfies the clause (2^k−1 of them for a
//     k-literal clause), named "Ci_" followed by the variables with
//     overbars rendered as a trailing "'" for negated values, e.g.
//     "C0_P Q'" — we use a compact bit string instead: "C0_t f t".
//
// Order (height one):
//   - Pj+ ≥ Pj and Pj- ≥ Pj                        (R_prop)
//   - Ci ≥ Ci_T for every satisfying T              (R_clause)
//   - Pj+ ≥ Ci_T whenever T assigns variable j true (R_true)
//   - Pj- ≥ Ci_T whenever T assigns j false         (R_false)
//
// Attributes: wp_j and wu_j per variable, wc_i per clause.
// Constraints: Ci ≥ wc_i and wp_j ≥ wc_i for each variable j of clause i
// (C_clause); wu_j ≥ wp_j and wu_j ≥ Pj (C_prop).
//
// The instance is satisfiable iff the formula is; a truth assignment is
// read back from a solution as: variable j is true iff Pj+ dominates the
// level assigned to wp_j.

// Reduction carries the constructed instance together with the bookkeeping
// needed to translate solutions back to truth assignments.
type Reduction struct {
	Instance *Reduced
	numVars  int
}

// Reduced is a min-poset instance produced by the reduction, with the
// attribute indices of the gadgets exposed.
type Reduced struct {
	*Instance
	WP []int // wp_j per variable
	WU []int // wu_j per variable
	WC []int // wc_i per clause
	// PPlus[j] is the element Pj+.
	PPlus []Elem
}

// Reduce builds the Theorem 6.1 min-poset instance for a CNF formula.
// Clauses must be non-empty and mention each variable at most once.
func Reduce(numVars int, clauses []Clause) (*Reduction, error) {
	if numVars < 1 {
		return nil, fmt.Errorf("poset: reduction needs at least one variable")
	}
	var names []string
	covers := make(map[string][]string)
	pName := func(j int) string { return fmt.Sprintf("P%d", j) }
	pPlus := func(j int) string { return fmt.Sprintf("P%d+", j) }
	pMinus := func(j int) string { return fmt.Sprintf("P%d-", j) }
	cName := func(i int) string { return fmt.Sprintf("C%d", i) }
	ctName := func(i int, t uint) string { return fmt.Sprintf("C%d_%0*b", i, len(clauses[i]), t) }

	for j := 0; j < numVars; j++ {
		names = append(names, pName(j), pPlus(j), pMinus(j))
		covers[pPlus(j)] = append(covers[pPlus(j)], pName(j))
		covers[pMinus(j)] = append(covers[pMinus(j)], pName(j))
	}
	for i, cl := range clauses {
		if len(cl) == 0 {
			return nil, fmt.Errorf("poset: clause %d is empty", i)
		}
		if len(cl) > 20 {
			return nil, fmt.Errorf("poset: clause %d too wide (%d literals)", i, len(cl))
		}
		seen := make(map[int]bool)
		for _, lit := range cl {
			v, _ := litVar(lit)
			if v < 0 || v >= numVars {
				return nil, fmt.Errorf("poset: clause %d mentions undeclared variable %d", i, v)
			}
			if seen[v] {
				return nil, fmt.Errorf("poset: clause %d repeats variable %d", i, v)
			}
			seen[v] = true
		}
		names = append(names, cName(i))
		// One element per satisfying truth assignment of the clause's own
		// variables; bit b of t is the value of the b-th literal's
		// variable.
		for t := uint(0); t < 1<<len(cl); t++ {
			satisfied := false
			for b, lit := range cl {
				_, pos := litVar(lit)
				if (t>>uint(b))&1 == 1 == pos {
					satisfied = true
					break
				}
			}
			if !satisfied {
				continue
			}
			nm := ctName(i, t)
			names = append(names, nm)
			covers[cName(i)] = append(covers[cName(i)], nm)
			for b, lit := range cl {
				v, _ := litVar(lit)
				if (t>>uint(b))&1 == 1 {
					covers[pPlus(v)] = append(covers[pPlus(v)], nm)
				} else {
					covers[pMinus(v)] = append(covers[pMinus(v)], nm)
				}
			}
		}
	}

	p, err := FromCovers("thm6.1-reduction", names, covers)
	if err != nil {
		return nil, err
	}
	red := &Reduced{Instance: NewInstance(p)}
	for j := 0; j < numVars; j++ {
		red.WP = append(red.WP, red.AddAttr("wp"+fmt.Sprint(j)))
		red.WU = append(red.WU, red.AddAttr("wu"+fmt.Sprint(j)))
		e, _ := p.ElemByName(pPlus(j))
		red.PPlus = append(red.PPlus, e)
	}
	for i := range clauses {
		red.WC = append(red.WC, red.AddAttr("wc"+fmt.Sprint(i)))
	}
	for i, cl := range clauses {
		ci, _ := p.ElemByName(cName(i))
		red.AddUpper(red.WC[i], ci)
		for _, lit := range cl {
			v, _ := litVar(lit)
			red.AddLowerAttr([]int{red.WP[v]}, red.WC[i])
		}
	}
	for j := 0; j < numVars; j++ {
		red.AddLowerAttr([]int{red.WU[j]}, red.WP[j])
		pj, _ := p.ElemByName(pName(j))
		red.AddLowerElem([]int{red.WU[j]}, pj)
	}
	return &Reduction{Instance: red, numVars: numVars}, nil
}

// Extract reads a truth assignment back from a min-poset solution:
// variable j is true iff Pj+ dominates the level of wp_j.
func (r *Reduction) Extract(m []Elem) []bool {
	out := make([]bool, r.numVars)
	for j := 0; j < r.numVars; j++ {
		out[j] = r.Instance.P.GE(r.Instance.PPlus[j], m[r.Instance.WP[j]])
	}
	return out
}

// Embed maps a truth assignment to a satisfying min-poset solution (the
// easy direction of the equivalence): wp_j = wu_j = Pj±, and wc_i = Ci_T
// where T is the assignment restricted to clause i.
func (r *Reduction) Embed(assignment []bool, clauses []Clause) ([]Elem, error) {
	p := r.Instance.P
	m := make([]Elem, len(r.Instance.AttrNames))
	for j := 0; j < r.numVars; j++ {
		name := fmt.Sprintf("P%d-", j)
		if assignment[j] {
			name = fmt.Sprintf("P%d+", j)
		}
		e, ok := p.ElemByName(name)
		if !ok {
			return nil, fmt.Errorf("poset: missing element %s", name)
		}
		m[r.Instance.WP[j]] = e
		m[r.Instance.WU[j]] = e
	}
	for i, cl := range clauses {
		t := uint(0)
		for b, lit := range cl {
			v, _ := litVar(lit)
			if assignment[v] {
				t |= 1 << uint(b)
			}
		}
		name := fmt.Sprintf("C%d_%0*b", i, len(cl), t)
		e, ok := p.ElemByName(name)
		if !ok {
			return nil, fmt.Errorf("poset: assignment does not satisfy clause %d (no element %s)", i, name)
		}
		m[r.Instance.WC[i]] = e
	}
	return m, nil
}

// Figure4A returns the reduction instance for the paper's example formula
// (P ∨ Q) ∧ (Q ∨ ¬R) over variables P=0, Q=1, R=2, whose partial order is
// depicted in Figure 4(a).
func Figure4A() (*Reduction, []Clause, error) {
	clauses := []Clause{{0, 1}, {1, ^2}}
	r, err := Reduce(3, clauses)
	return r, clauses, err
}

// Figure4B returns the four-element poset of Figure 4(b): two upper
// elements a and b, each dominating both lower elements c and d. It is the
// smallest order that is not a partial lattice, and the fixed order for
// which the Pratt–Tiuryn strengthening keeps min-poset NP-hard.
func Figure4B() *Poset {
	return MustFromCovers("figure-4b",
		[]string{"a", "b", "c", "d"},
		map[string][]string{"a": {"c", "d"}, "b": {"c", "d"}})
}

// FormatAssignment renders a min-poset assignment for humans.
func (in *Instance) FormatAssignment(m []Elem) string {
	parts := make([]string, len(m))
	for i, e := range m {
		parts[i] = in.AttrNames[i] + "=" + in.P.ElemName(e)
	}
	return strings.Join(parts, " ")
}
