package load

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeServer emulates just enough of minupd's surface for the runner:
// policy CRUD with real liveness, memoized solves, a static instance, a
// Prometheus endpoint, and per-request behavior knobs (shed, degrade).
type fakeServer struct {
	mu       sync.Mutex
	policies map[string]bool

	requests  atomic.Uint64
	mutations atomic.Uint64
	solves    atomic.Uint64
	problems  atomic.Uint64

	// shedEvery sheds (503) every Nth request when > 0.
	shedEvery uint64
	// degradeSolves answers policy solves with "degraded": true.
	degradeSolves atomic.Bool
	// burnMilli is exposed as slo_solve_avail_burn_5m_milli.
	burnMilli atomic.Int64
	// noStatic makes /solve and /trace 404 (catalog-only server).
	noStatic bool
	// noProblems makes the /problems routes 404 (pre-frontend server).
	noProblems bool
	// noLeader answers every mutation 503 + X-Cluster-State: no-leader,
	// emulating an election window.
	noLeader atomic.Bool

	mux *http.ServeMux
	srv *httptest.Server
}

// newFollower starts a second listener sharing this server's read state
// but bouncing every mutation to the "leader" with a 307, the way a
// clustered minupd follower does.
func (f *fakeServer) newFollower() *httptest.Server {
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet &&
			(strings.HasPrefix(r.URL.Path, "/policies/") || strings.HasPrefix(r.URL.Path, "/problems/")) {
			w.Header().Set("X-Cluster-Leader", f.srv.URL)
			http.Redirect(w, r, f.srv.URL+r.URL.RequestURI(), http.StatusTemporaryRedirect)
			return
		}
		f.mux.ServeHTTP(w, r)
	}))
}

func newFakeServer() *fakeServer {
	f := &fakeServer{policies: make(map[string]bool)}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, "# TYPE build_info gauge\nbuild_info{version=\"vtest\",go_version=\"gotest\"} 1\n")
		fmt.Fprintf(w, "# TYPE http_requests counter\nhttp_requests %d\n", f.requests.Load())
		fmt.Fprintf(w, "# TYPE catalog_mutations counter\ncatalog_mutations %d\n", f.mutations.Load())
		fmt.Fprintf(w, "# TYPE runtime_goroutines gauge\nruntime_goroutines 12\n")
		fmt.Fprintf(w, "# TYPE slo_solve_avail_burn_5m_milli gauge\nslo_solve_avail_burn_5m_milli %d\n", f.burnMilli.Load())
	})
	mux.HandleFunc("/solve", func(w http.ResponseWriter, r *http.Request) {
		if f.noStatic {
			http.NotFound(w, r)
			return
		}
		if f.count(w, r) {
			return
		}
		f.solves.Add(1)
		fmt.Fprintln(w, `{"assignment":{}}`)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		if f.noStatic {
			http.NotFound(w, r)
			return
		}
		if f.count(w, r) {
			return
		}
		fmt.Fprintln(w, `{"steps":[]}`)
	})
	mux.HandleFunc("/problems", func(w http.ResponseWriter, r *http.Request) {
		if f.noProblems {
			http.NotFound(w, r)
			return
		}
		fmt.Fprintln(w, `{"families":[{"name":"suppress"},{"name":"depinf"}]}`)
	})
	mux.HandleFunc("/problems/", func(w http.ResponseWriter, r *http.Request) {
		if f.noProblems {
			http.NotFound(w, r)
			return
		}
		if f.count(w, r) {
			return
		}
		family := strings.TrimPrefix(r.URL.Path, "/problems/")
		if r.Method != http.MethodPost || (family != "suppress" && family != "depinf") {
			http.NotFound(w, r)
			return
		}
		if f.noLeader.Load() {
			w.Header().Set("X-Cluster-State", "no-leader")
			http.Error(w, "no cluster leader; retry", http.StatusServiceUnavailable)
			return
		}
		name := r.URL.Query().Get("name")
		if name == "" {
			http.Error(w, "missing name", http.StatusBadRequest)
			return
		}
		f.mutations.Add(1)
		f.problems.Add(1)
		f.mu.Lock()
		f.policies[name] = true
		f.mu.Unlock()
		w.WriteHeader(http.StatusCreated)
		fmt.Fprintf(w, `{"name":%q,"family":%q}`+"\n", name, family)
	})
	mux.HandleFunc("/policies/", func(w http.ResponseWriter, r *http.Request) {
		if f.count(w, r) {
			return
		}
		if r.Method != http.MethodGet && f.noLeader.Load() {
			w.Header().Set("X-Cluster-State", "no-leader")
			http.Error(w, "no cluster leader; retry", http.StatusServiceUnavailable)
			return
		}
		rest := strings.TrimPrefix(r.URL.Path, "/policies/")
		parts := strings.Split(rest, "/")
		name := parts[0]
		f.mu.Lock()
		defer f.mu.Unlock()
		switch {
		case len(parts) == 1 && r.Method == http.MethodPut:
			f.mutations.Add(1)
			f.policies[name] = true
			w.WriteHeader(http.StatusCreated)
		case len(parts) == 1 && r.Method == http.MethodDelete:
			if !f.policies[name] {
				http.NotFound(w, r)
				return
			}
			f.mutations.Add(1)
			delete(f.policies, name)
			w.WriteHeader(http.StatusNoContent)
		case len(parts) == 2 && parts[1] == "constraints" && r.Method == http.MethodPost:
			if !f.policies[name] {
				http.NotFound(w, r)
				return
			}
			f.mutations.Add(1)
			fmt.Fprintln(w, `{"ok":true}`)
		case len(parts) == 2 && parts[1] == "solve" && r.Method == http.MethodGet:
			if !f.policies[name] {
				http.NotFound(w, r)
				return
			}
			f.solves.Add(1)
			if f.degradeSolves.Load() {
				fmt.Fprintln(w, `{"assignment":{},"degraded":true}`)
			} else {
				fmt.Fprintln(w, `{"assignment":{}}`)
			}
		default:
			http.Error(w, "bad request", http.StatusBadRequest)
		}
	})
	f.mux = mux
	f.srv = httptest.NewServer(mux)
	return f
}

// count tallies the request and applies the shed knob; reports whether the
// request was already answered (with a 503).
func (f *fakeServer) count(w http.ResponseWriter, r *http.Request) bool {
	n := f.requests.Add(1)
	if f.shedEvery > 0 && n%f.shedEvery == 0 {
		http.Error(w, "shed", http.StatusServiceUnavailable)
		return true
	}
	return false
}

func smokePlan() Plan {
	return Plan{
		Seed:     7,
		Workload: DefaultWorkload(),
		Stages: []Stage{
			{
				Name: "ramp", Kind: "ramp", Seconds: 0.6, Clients: 4,
				QPS: 400, RampFromQPS: 100, Mix: DefaultMix(),
				Gates: Gates{MinSuccessRate: 0.9, MaxErrorRate: 0.05, MaxP99MS: 1000},
			},
			{
				Name: "storm", Kind: "storm", Seconds: 0.4, Clients: 8,
				Mix:   DefaultMix(),
				Gates: Gates{MaxErrorRate: 0.05},
			},
		},
	}
}

func TestRunnerAgainstFakeServer(t *testing.T) {
	f := newFakeServer()
	defer f.srv.Close()
	out := t.TempDir()
	r := &Runner{BaseURL: f.srv.URL, OutDir: out, Logf: t.Logf}
	rep, err := r.Run(context.Background(), smokePlan())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed {
		t.Fatalf("run failed: %v", rep.FailedStages())
	}
	if len(rep.Stages) != 2 {
		t.Fatalf("got %d stage results, want 2", len(rep.Stages))
	}
	if rep.BuildInfo["version"] != "vtest" {
		t.Fatalf("build info not scraped: %+v", rep.BuildInfo)
	}
	for _, st := range rep.Stages {
		c := st.Total
		if c.Attempts == 0 {
			t.Fatalf("stage %s made no requests", st.Name)
		}
		if got := c.Success + c.Degraded + c.Shed + c.Errors; got != c.Attempts {
			t.Fatalf("stage %s: outcomes %d don't add up to attempts %d", st.Name, got, c.Attempts)
		}
		var sum uint64
		for _, op := range st.PerOp {
			sum += op.Counts.Attempts
		}
		if sum != c.Attempts {
			t.Fatalf("stage %s: per-op attempts %d != total %d", st.Name, sum, c.Attempts)
		}
		if st.Latency.P99MS <= 0 {
			t.Fatalf("stage %s: no latency recorded", st.Name)
		}
		if st.Server == nil {
			t.Fatalf("stage %s: no server sample", st.Name)
		}
		if st.Server.CounterDeltas["http_requests"] <= 0 {
			t.Fatalf("stage %s: http_requests delta missing: %+v", st.Name, st.Server.CounterDeltas)
		}
		if st.Server.Gauges["runtime_goroutines"] != 12 {
			t.Fatalf("stage %s: gauges not sampled: %+v", st.Name, st.Server.Gauges)
		}
	}
	// The result dir carries one file per stage plus the summary.
	for _, name := range []string{"stage-00-ramp.json", "stage-01-storm.json", "summary.json"} {
		if _, err := os.Stat(filepath.Join(out, name)); err != nil {
			t.Fatalf("missing result file %s: %v", name, err)
		}
	}
	// The mutations the clients sent actually landed on the server.
	if f.mutations.Load() == 0 {
		t.Fatal("no mutations reached the server")
	}
	if f.solves.Load() == 0 {
		t.Fatal("no solves reached the server")
	}
}

func TestRunnerClassifiesSheds(t *testing.T) {
	f := newFakeServer()
	defer f.srv.Close()
	f.shedEvery = 3 // every 3rd request is a bare 503
	r := &Runner{BaseURL: f.srv.URL}
	plan := smokePlan()
	plan.Stages = plan.Stages[:1]
	plan.Stages[0].Gates = Gates{MaxErrorRate: 0.05} // sheds are not errors
	rep, err := r.Run(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed {
		t.Fatalf("sheds must not fail an error-rate gate: %v", rep.Stages[0].GateFailures)
	}
	c := rep.Stages[0].Total
	if c.Shed == 0 {
		t.Fatalf("no sheds recorded: %+v", c)
	}
	if got := c.ShedRate(); got < 0.2 || got > 0.45 {
		t.Fatalf("shed rate %.3f implausible for shed-every-3rd", got)
	}
}

func TestRunnerClassifiesDegraded(t *testing.T) {
	f := newFakeServer()
	defer f.srv.Close()
	f.degradeSolves.Store(true)
	r := &Runner{BaseURL: f.srv.URL}
	plan := smokePlan()
	plan.Stages = plan.Stages[:1]
	plan.Stages[0].Gates = Gates{MaxDegradedRate: 0.01}
	rep, err := r.Run(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	c := rep.Stages[0].Total
	if c.Degraded == 0 {
		t.Fatalf("no degraded answers recorded: %+v", c)
	}
	if rep.Passed {
		t.Fatal("degraded-rate gate should have failed")
	}
	found := false
	for _, reason := range rep.Stages[0].GateFailures {
		if strings.Contains(reason, "degraded rate") {
			found = true
		}
	}
	if !found {
		t.Fatalf("failure reasons missing degraded gate: %v", rep.Stages[0].GateFailures)
	}
}

func TestRunnerFollowsLeaderRedirects(t *testing.T) {
	// Two-member "cluster": the follower 307s every mutation to the leader.
	// The runner must land every mutation anyway (method and body intact),
	// record the hops, and learn the X-Cluster-Leader hint so most
	// mutations skip the bounce.
	f := newFakeServer()
	defer f.srv.Close()
	follower := f.newFollower()
	defer follower.Close()

	r := &Runner{Addrs: []string{follower.URL, f.srv.URL}, Logf: t.Logf}
	plan := smokePlan()
	plan.Stages = plan.Stages[:1]
	plan.Stages[0].Gates = Gates{MinSuccessRate: 0.95, MaxErrorRate: 0.01}
	rep, err := r.Run(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed {
		t.Fatalf("clustered run failed: %v", rep.Stages[0].GateFailures)
	}
	c := rep.Stages[0].Total
	if c.Redirects == 0 {
		t.Fatalf("no redirects recorded against a redirecting follower: %+v", c)
	}
	mutates := rep.Stages[0].PerOp[opMutate].Counts
	if mutates.Redirects == 0 || mutates.Redirects != c.Redirects {
		t.Fatalf("redirects not attributed to mutations: total=%d mutate=%d", c.Redirects, mutates.Redirects)
	}
	// The leader hint sticks: after the first bounce, mutations go direct,
	// so hops stay well below the mutation count.
	if mutates.Attempts > 20 && c.Redirects*2 > mutates.Attempts {
		t.Fatalf("hint not learned: %d redirects across %d mutations", c.Redirects, mutates.Attempts)
	}
	if f.mutations.Load() == 0 {
		t.Fatal("no mutation reached the leader")
	}
	if rep.Target != follower.URL+","+f.srv.URL {
		t.Fatalf("report target %q", rep.Target)
	}
}

func TestRunnerClassifiesElectionWindows(t *testing.T) {
	// A 503 carrying X-Cluster-State is a typed election-window answer:
	// degraded, not shed and not an error.
	f := newFakeServer()
	defer f.srv.Close()
	f.noLeader.Store(true)
	r := &Runner{BaseURL: f.srv.URL}
	plan := smokePlan()
	plan.Stages = plan.Stages[:1]
	plan.Stages[0].Gates = Gates{MaxErrorRate: 0.01, MaxShedRate: 0.01}
	rep, err := r.Run(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed {
		t.Fatalf("election answers tripped error/shed gates: %v", rep.Stages[0].GateFailures)
	}
	c := rep.Stages[0].Total
	if c.Degraded == 0 {
		t.Fatalf("no-leader answers not classified degraded: %+v", c)
	}
	if c.Shed != 0 {
		t.Fatalf("typed cluster 503s misclassified as sheds: %+v", c)
	}
}

func TestRunnerTightenedGateFails(t *testing.T) {
	// The acceptance check from the issue: a deliberately impossible
	// threshold must fail the run — and with a nonzero p99 there is always
	// a threshold below it.
	f := newFakeServer()
	defer f.srv.Close()
	r := &Runner{BaseURL: f.srv.URL}
	plan := smokePlan()
	plan.Stages = plan.Stages[:1]
	plan.Stages[0].Gates = Gates{MaxP99MS: 0.0001}
	rep, err := r.Run(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Passed {
		t.Fatal("impossible p99 gate passed")
	}
	if got := rep.FailedStages(); len(got) != 1 || got[0] != "ramp" {
		t.Fatalf("failed stages %v, want [ramp]", got)
	}
}

func TestRunnerBurnRateGate(t *testing.T) {
	f := newFakeServer()
	defer f.srv.Close()
	f.burnMilli.Store(14_500) // burn 14.5
	r := &Runner{BaseURL: f.srv.URL}
	plan := smokePlan()
	plan.Stages = plan.Stages[:1]
	plan.Stages[0].Gates = Gates{MaxAvailBurn5m: 14}
	rep, err := r.Run(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Passed {
		t.Fatal("burn gate should have failed at 14.5 > 14")
	}
	st := rep.Stages[0]
	if st.Server == nil || st.Server.MaxAvailBurn5m != 14.5 {
		t.Fatalf("scraped burn wrong: %+v", st.Server)
	}
	// Loosening the gate above the scraped burn passes.
	plan.Stages[0].Gates = Gates{MaxAvailBurn5m: 15}
	rep, err = r.Run(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed {
		t.Fatalf("burn gate failed at 14.5 < 15: %v", rep.Stages[0].GateFailures)
	}
}

func TestRunnerCatalogOnlyFallback(t *testing.T) {
	// Against a server with no static instance, cold-solve and trace draws
	// fall back to cached solves instead of racking up 404 errors.
	f := newFakeServer()
	defer f.srv.Close()
	f.noStatic = true
	r := &Runner{BaseURL: f.srv.URL}
	plan := smokePlan()
	plan.Stages = plan.Stages[:1]
	plan.Stages[0].Gates = Gates{MaxErrorRate: 0.01}
	rep, err := r.Run(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed {
		t.Fatalf("fallback run failed: %v", rep.Stages[0].GateFailures)
	}
	st := rep.Stages[0]
	for _, op := range []string{opCold, opTrace} {
		if res, ok := st.PerOp[op]; ok && res.Counts.Attempts > 0 {
			t.Fatalf("%s attempted against a catalog-only server", op)
		}
	}
}

func TestRunnerProblemCreates(t *testing.T) {
	// The default mix carries a thin stream of problem-frontend creates;
	// against a server with /problems routes they must land as successes
	// and register as mutations (a stored problem is an ordinary policy).
	f := newFakeServer()
	defer f.srv.Close()
	r := &Runner{BaseURL: f.srv.URL, Logf: t.Logf}
	plan := smokePlan()
	plan.Stages = plan.Stages[:1]
	plan.Stages[0].Gates = Gates{MinSuccessRate: 0.95, MaxErrorRate: 0.01}
	rep, err := r.Run(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed {
		t.Fatalf("run with problem ops failed: %v", rep.Stages[0].GateFailures)
	}
	res, ok := rep.Stages[0].PerOp[opProblem]
	if !ok || res.Counts.Attempts == 0 {
		t.Fatal("no problem creates attempted under the default mix")
	}
	if res.Counts.Errors > 0 {
		t.Fatalf("problem creates errored: %+v", res.Counts)
	}
	if f.problems.Load() == 0 {
		t.Fatal("no problem create reached the server")
	}
}

func TestRunnerProblemFallback(t *testing.T) {
	// Against a server without the /problems routes (pre-frontend build),
	// problem draws fall back to mutations instead of racking up 404 errors.
	f := newFakeServer()
	defer f.srv.Close()
	f.noProblems = true
	r := &Runner{BaseURL: f.srv.URL}
	plan := smokePlan()
	plan.Stages = plan.Stages[:1]
	plan.Stages[0].Gates = Gates{MaxErrorRate: 0.01}
	rep, err := r.Run(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed {
		t.Fatalf("fallback run failed: %v", rep.Stages[0].GateFailures)
	}
	if res, ok := rep.Stages[0].PerOp[opProblem]; ok && res.Counts.Attempts > 0 {
		t.Fatal("problem creates attempted against a server without /problems")
	}
}

// clusterNode fakes one member's read-balancing surface: /healthz plus a
// fixed GET /cluster payload.
func clusterNode(t *testing.T, body string) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/healthz":
			fmt.Fprintln(w, "ok")
		case "/cluster":
			if body == "" {
				http.NotFound(w, r)
				return
			}
			fmt.Fprintln(w, body)
		default:
			http.NotFound(w, r)
		}
	}))
	t.Cleanup(srv.Close)
	return srv
}

func TestRankReadTargets(t *testing.T) {
	leader := clusterNode(t, `{"role":"leader","load":{"inflight":0,"queue_depth":0}}`)
	fresh := clusterNode(t, `{"role":"follower","replica_lag_frames":0,"replica_lag_known":true,"load":{"inflight":3,"queue_depth":1}}`)
	lagged := clusterNode(t, `{"role":"follower","replica_lag_frames":5,"replica_lag_known":true,"load":{"inflight":0,"queue_depth":0}}`)
	stale := clusterNode(t, `{"role":"follower","replica_lag_frames":9999,"replica_lag_known":true,"load":{}}`)
	unknown := clusterNode(t, `{"role":"follower","replica_lag_known":false,"load":{}}`)
	bare := clusterNode(t, "") // no /cluster at all

	newRunner := func(targets ...string) *Runner {
		r := &Runner{Client: http.DefaultClient, RequestTimeout: 2 * time.Second, Logf: t.Logf}
		r.targets = targets
		return r
	}
	ctx := context.Background()

	// Fresh followers first (by lag, then load), leader last; stale and
	// lag-unknown members are excluded entirely.
	r := newRunner(leader.URL, stale.URL, lagged.URL, unknown.URL, fresh.URL)
	got := r.rankReadTargets(ctx)
	want := []string{fresh.URL, lagged.URL, leader.URL}
	if len(got) != len(want) {
		t.Fatalf("ranked %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ranked %v, want %v", got, want)
		}
	}

	// A single target never ranks: nothing to balance.
	if got := newRunner(leader.URL).rankReadTargets(ctx); got != nil {
		t.Fatalf("single target ranked: %v", got)
	}

	// Any member without /cluster hints disables ranking (use every target).
	if got := newRunner(leader.URL, bare.URL).rankReadTargets(ctx); got != nil {
		t.Fatalf("ranking with a hint-less member: %v", got)
	}
}

func TestRunnerChaosStageArmsAndDisarms(t *testing.T) {
	f := newFakeServer()
	defer f.srv.Close()
	var mu sync.Mutex
	var posts []string
	debug := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/debug/fault" || r.Method != http.MethodPost {
			http.NotFound(w, r)
			return
		}
		body := make([]byte, 512)
		n, _ := r.Body.Read(body)
		mu.Lock()
		posts = append(posts, string(body[:n]))
		mu.Unlock()
		fmt.Fprintln(w, "ok")
	}))
	defer debug.Close()

	r := &Runner{BaseURL: f.srv.URL, DebugURL: debug.URL}
	plan := smokePlan()
	plan.Stages = plan.Stages[:1]
	plan.Stages[0].Kind = "chaos"
	plan.Stages[0].Fault = "solve.step:delay:~0.5:1ms"
	plan.Stages[0].Gates = Gates{MaxErrorRate: 0.05}
	rep, err := r.Run(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed {
		t.Fatalf("chaos stage failed: %v", rep.Stages[0].GateFailures)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(posts) != 2 || posts[0] != "solve.step:delay:~0.5:1ms" || posts[1] != "" {
		t.Fatalf("fault posts %q, want [spec, empty-disarm]", posts)
	}
}

func TestRunnerChaosNeedsDebugURL(t *testing.T) {
	f := newFakeServer()
	defer f.srv.Close()
	r := &Runner{BaseURL: f.srv.URL}
	plan := smokePlan()
	plan.Stages[1].Fault = "wal.fsync:delay:~1:1ms"
	if _, err := r.Run(context.Background(), plan); err == nil {
		t.Fatal("fault stage without a debug URL must refuse to run")
	}
}

func TestRunnerUnreachableTarget(t *testing.T) {
	r := &Runner{BaseURL: "http://127.0.0.1:1", RequestTimeout: time.Second}
	if _, err := r.Run(context.Background(), smokePlan()); err == nil {
		t.Fatal("unreachable target must be an error, not a gate failure")
	}
}

func TestPlanValidate(t *testing.T) {
	p := DefaultPlan()
	if err := p.Validate(); err != nil {
		t.Fatalf("default plan invalid: %v", err)
	}
	bad := []func(*Plan){
		func(p *Plan) { p.Stages = nil },
		func(p *Plan) { p.Stages[0].Name = "" },
		func(p *Plan) { p.Stages[1].Name = p.Stages[0].Name },
		func(p *Plan) { p.Stages[0].Seconds = 0 },
		func(p *Plan) { p.Stages[0].Clients = 0 },
		func(p *Plan) { p.Stages[0].Mix = Mix{} },
		func(p *Plan) { p.Stages[0].QPS = 0 }, // ramp without QPS
	}
	for i, mutate := range bad {
		p := DefaultPlan()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid plan accepted", i)
		}
	}
	// Validate fills a ramp's starting QPS.
	p = DefaultPlan()
	p.Stages[0].RampFromQPS = 0
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if got, want := p.Stages[0].RampFromQPS, p.Stages[0].QPS/10; got != want {
		t.Fatalf("RampFromQPS default %v, want %v", got, want)
	}
}

func TestPlanFilter(t *testing.T) {
	p := DefaultPlan()
	got, err := p.Filter("ramp, storm")
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Stages) != 2 || got.Stages[0].Name != "ramp" || got.Stages[1].Name != "storm" {
		t.Fatalf("filtered stages wrong: %+v", got.Stages)
	}
	if _, err := p.Filter("ramp,tsunami"); err == nil {
		t.Fatal("unknown stage name accepted")
	}
}

func TestPlanJSONRoundTrip(t *testing.T) {
	p := DefaultPlan()
	b, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadPlan(strings.NewReader(string(b)))
	if err != nil {
		t.Fatal(err)
	}
	if got.Seed != p.Seed || len(got.Stages) != len(p.Stages) {
		t.Fatalf("round trip lost data: %+v", got)
	}
	if got.Stages[3].Fault != p.Stages[3].Fault {
		t.Fatalf("fault spec lost: %q", got.Stages[3].Fault)
	}
	if got.Stages[0].Gates != p.Stages[0].Gates {
		t.Fatalf("gates lost: %+v", got.Stages[0].Gates)
	}
	// Unknown fields are rejected, not ignored.
	if _, err := ReadPlan(strings.NewReader(`{"seed":1,"stages":[{"name":"x","gatez":{}}]}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
}
