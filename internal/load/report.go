package load

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"minup/internal/obs"
)

// Counts is the outcome tally of a set of requests.
type Counts struct {
	Attempts uint64 `json:"attempts"`
	// Success is non-degraded 2xx answers.
	Success uint64 `json:"success"`
	// Degraded is 2xx answers served by the Qian fallback.
	Degraded uint64 `json:"degraded"`
	// Shed is 503 refusals from the admission gate.
	Shed uint64 `json:"shed"`
	// Errors is transport failures, timeouts, and unexpected statuses.
	Errors uint64 `json:"errors"`
	// Redirects counts 307 leader-redirect hops followed (cluster mode);
	// the redirected attempt itself is tallied once under its final
	// outcome.
	Redirects uint64 `json:"redirects,omitempty"`
}

func (c Counts) rate(n uint64) float64 {
	if c.Attempts == 0 {
		return 0
	}
	return float64(n) / float64(c.Attempts)
}

// SuccessRate is the fraction of attempts answered with a non-degraded 2xx.
func (c Counts) SuccessRate() float64 { return c.rate(c.Success) }

// ErrorRate is the fraction of attempts that failed outright.
func (c Counts) ErrorRate() float64 { return c.rate(c.Errors) }

// ShedRate is the fraction of attempts shed with 503.
func (c Counts) ShedRate() float64 { return c.rate(c.Shed) }

// DegradedRate is the fraction of attempts answered degraded.
func (c Counts) DegradedRate() float64 { return c.rate(c.Degraded) }

// LatencySummary is the client-observed latency of a request set, in
// milliseconds, derived from an obs.Histogram over microsecond buckets.
// Quantiles are bucket upper bounds, so they round up to the bucket grid.
type LatencySummary struct {
	P50MS  float64 `json:"p50_ms"`
	P90MS  float64 `json:"p90_ms"`
	P99MS  float64 `json:"p99_ms"`
	MaxMS  float64 `json:"max_ms,omitempty"`
	MeanMS float64 `json:"mean_ms"`
}

func latencySummary(s obs.HistogramSnapshot, maxUS uint64) LatencySummary {
	ms := func(us uint64) float64 { return float64(us) / 1000 }
	out := LatencySummary{
		P50MS: ms(s.Quantile(0.50)),
		P90MS: ms(s.Quantile(0.90)),
		P99MS: ms(s.Quantile(0.99)),
		MaxMS: ms(maxUS),
	}
	if s.Count > 0 {
		out.MeanMS = ms(s.Sum) / float64(s.Count)
	}
	return out
}

// OpResult is one request kind's slice of a stage.
type OpResult struct {
	Counts  Counts         `json:"counts"`
	Latency LatencySummary `json:"latency"`
}

// ServerSample is what the between-stage metrics scrapes say the server did
// during a stage: deltas of every counter that moved, plus the current SLO
// burn-rate and runtime gauges.
type ServerSample struct {
	// CounterDeltas maps counter name to its increase across the stage;
	// zero-delta counters are omitted.
	CounterDeltas map[string]float64 `json:"counter_deltas,omitempty"`
	// Gauges holds the post-stage values of the slo_*, runtime_*, and
	// process_* gauges.
	Gauges map[string]float64 `json:"gauges,omitempty"`
	// MaxAvailBurn5m is the worst per-route slo_*_avail_burn_5m_milli,
	// rescaled to a plain burn rate (1.0 = burning budget exactly at the
	// sustainable rate).
	MaxAvailBurn5m float64 `json:"max_avail_burn_5m"`
}

// serverSample diffs two scrapes. Counters are recognized by their exposed
// TYPE; everything typed gauge is sampled at its after-value.
func serverSample(before, after *obs.PromMetrics) *ServerSample {
	s := &ServerSample{
		CounterDeltas: make(map[string]float64),
		Gauges:        make(map[string]float64),
	}
	prev := make(map[string]float64, len(before.Samples))
	for _, smp := range before.Samples {
		if len(smp.Labels) == 0 {
			prev[smp.Name] = smp.Value
		}
	}
	for _, smp := range after.Samples {
		if len(smp.Labels) != 0 {
			continue
		}
		switch after.Types[smp.Name] {
		case "counter":
			if d := smp.Value - prev[smp.Name]; d != 0 {
				s.CounterDeltas[smp.Name] = d
			}
		case "gauge":
			n := smp.Name
			if strings.HasPrefix(n, "slo_") || strings.HasPrefix(n, "runtime_") || strings.HasPrefix(n, "process_") {
				s.Gauges[n] = smp.Value
			}
			if strings.HasPrefix(n, "slo_") && strings.HasSuffix(n, "_avail_burn_5m_milli") {
				if burn := smp.Value / 1000; burn > s.MaxAvailBurn5m {
					s.MaxAvailBurn5m = burn
				}
			}
		}
	}
	if len(s.CounterDeltas) == 0 {
		s.CounterDeltas = nil
	}
	if len(s.Gauges) == 0 {
		s.Gauges = nil
	}
	return s
}

// StageResult is one stage's full outcome: client-side tallies and latency,
// the server-side sample, and the gate verdict.
type StageResult struct {
	Name            string              `json:"name"`
	Kind            string              `json:"kind"`
	Fault           string              `json:"fault,omitempty"`
	Clients         int                 `json:"clients"`
	TargetQPS       float64             `json:"target_qps,omitempty"`
	StartedAt       time.Time           `json:"started_at"`
	DurationSeconds float64             `json:"duration_seconds"`
	Total           Counts              `json:"total"`
	PerOp           map[string]OpResult `json:"per_op,omitempty"`
	ThroughputRPS   float64             `json:"throughput_rps"`
	Latency         LatencySummary      `json:"latency"`
	Server          *ServerSample       `json:"server,omitempty"`
	Gates           Gates               `json:"gates"`
	GatePassed      bool                `json:"gate_passed"`
	GateFailures    []string            `json:"gate_failures,omitempty"`

	// scrapedAfter carries the raw post-stage scrape to the next stage as
	// its baseline; not serialized.
	scrapedAfter *obs.PromMetrics
}

func (r *StageResult) summaryLine() string {
	verdict := "PASS"
	if !r.GatePassed {
		verdict = "FAIL (" + strings.Join(r.GateFailures, "; ") + ")"
	}
	return fmt.Sprintf(
		"%d attempts @ %.0f rps, success %.1f%%, degraded %.1f%%, shed %.1f%%, errors %.1f%%, p99 %.1fms — %s",
		r.Total.Attempts, r.ThroughputRPS,
		100*r.Total.SuccessRate(), 100*r.Total.DegradedRate(),
		100*r.Total.ShedRate(), 100*r.Total.ErrorRate(),
		r.Latency.P99MS, verdict)
}

// Evaluate judges a stage result against its gates, returning one
// human-readable reason per failed gate (empty means pass). A stage that
// made no requests at all fails unconditionally: silence is not health.
func (g Gates) Evaluate(r *StageResult) []string {
	var fails []string
	if r.Total.Attempts == 0 {
		return []string{"stage made no requests"}
	}
	if g.MinSuccessRate > 0 && r.Total.SuccessRate() < g.MinSuccessRate {
		fails = append(fails, fmt.Sprintf("success rate %.4f < min %.4f", r.Total.SuccessRate(), g.MinSuccessRate))
	}
	if g.MaxErrorRate > 0 && r.Total.ErrorRate() > g.MaxErrorRate {
		fails = append(fails, fmt.Sprintf("error rate %.4f > max %.4f", r.Total.ErrorRate(), g.MaxErrorRate))
	}
	if g.MaxShedRate > 0 && r.Total.ShedRate() > g.MaxShedRate {
		fails = append(fails, fmt.Sprintf("shed rate %.4f > max %.4f", r.Total.ShedRate(), g.MaxShedRate))
	}
	if g.MaxDegradedRate > 0 && r.Total.DegradedRate() > g.MaxDegradedRate {
		fails = append(fails, fmt.Sprintf("degraded rate %.4f > max %.4f", r.Total.DegradedRate(), g.MaxDegradedRate))
	}
	if g.MaxP99MS > 0 && r.Latency.P99MS > g.MaxP99MS {
		fails = append(fails, fmt.Sprintf("p99 %.1fms > max %.1fms", r.Latency.P99MS, g.MaxP99MS))
	}
	if g.MaxAvailBurn5m > 0 {
		if r.Server == nil {
			fails = append(fails, "burn-rate gate set but server metrics were not scraped")
		} else if r.Server.MaxAvailBurn5m > g.MaxAvailBurn5m {
			fails = append(fails, fmt.Sprintf("avail burn (5m) %.2f > max %.2f", r.Server.MaxAvailBurn5m, g.MaxAvailBurn5m))
		}
	}
	return fails
}

// Report is a full run's outcome.
type Report struct {
	Plan            Plan              `json:"plan"`
	Target          string            `json:"target"`
	BuildInfo       map[string]string `json:"build_info,omitempty"`
	StartedAt       time.Time         `json:"started_at"`
	DurationSeconds float64           `json:"duration_seconds"`
	Stages          []StageResult     `json:"stages"`
	// Passed is true iff every stage's gates passed.
	Passed bool `json:"passed"`
}

// FailedStages names the stages whose gates failed, in run order.
func (r *Report) FailedStages() []string {
	var out []string
	for i := range r.Stages {
		if !r.Stages[i].GatePassed {
			out = append(out, r.Stages[i].Name)
		}
	}
	return out
}

func writeJSONFile(path string, v any) error {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// writeStageFile emits stage-NN-<name>.json into the result dir.
func writeStageFile(dir string, index int, res *StageResult) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return writeJSONFile(filepath.Join(dir, fmt.Sprintf("stage-%02d-%s.json", index, res.Name)), res)
}

// writeSummaryFile emits summary.json into the result dir.
func writeSummaryFile(dir string, rep *Report) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return writeJSONFile(filepath.Join(dir, "summary.json"), rep)
}

// SortedGaugeNames is a small helper for deterministic test output and
// debug printing.
func (s *ServerSample) SortedGaugeNames() []string {
	names := make([]string, 0, len(s.Gauges))
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
