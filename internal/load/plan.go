// Package load is the staged load-test harness behind cmd/minload: a plan
// of stages (ramp → storm → soak, plus chaos stages that arm server-side
// fault injection), each driving a mixed workload — catalog mutations from
// seeded workload.MutationStreams, cached policy solves, cold solves of
// the static instance, and trace requests — from many concurrent clients
// against a running minupd.
//
// Each stage records client-side latency histograms (obs.Histogram) and
// success/degraded/shed/error counts, scrapes the server's
// /metrics?format=prometheus between stages (obs.ParsePrometheus) to
// capture counter deltas and SLO burn gauges, and is judged by per-stage
// gates: minimum success rate, maximum error/shed/degraded rates, maximum
// client-side p99, and a maximum server-side availability burn rate. The
// per-stage results are written as JSON into a result directory, and any
// failed gate fails the run — the shape that answers the ROADMAP's "what
// QPS does minupd sustain at p99 < X ms before shedding?".
//
// Plans are data (JSON-serializable), so CI runs a short ramp+storm plan
// while EXPERIMENTS.md describes full soak and load-under-chaos recipes
// over the same machinery.
package load

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"minup/internal/workload"
)

// Mix weighs the request kinds a stage's clients draw from. Weights are
// relative, not normalized; a zero weight disables the kind.
type Mix struct {
	// Mutate applies the next catalog mutation from the client's seeded
	// MutationStream (policy put / constraint append / delete).
	Mutate float64 `json:"mutate"`
	// CachedSolve asks for a policy the client already created — the
	// memoized serve path, the hot path at scale.
	CachedSolve float64 `json:"cached_solve"`
	// ColdSolve solves the server's static instance (/solve), which runs
	// the full compiled solver on every request. On a catalog-only server
	// these fall back to cached solves.
	ColdSolve float64 `json:"cold_solve"`
	// Trace requests a fully instrumented solve (/trace), the most
	// expensive read. Falls back like ColdSolve on catalog-only servers.
	Trace float64 `json:"trace"`
	// Problem posts a seeded problem-frontend instance (alternating
	// suppress / depinf) to /problems/{family}, exercising the
	// parse-compile-store path with instance geometries the mutation
	// stream never produces.
	Problem float64 `json:"problem,omitempty"`
}

func (m Mix) total() float64 { return m.Mutate + m.CachedSolve + m.ColdSolve + m.Trace + m.Problem }

// Gates are a stage's pass/fail thresholds. The zero value of each field
// disables that gate, so a plan only pays for the checks it declares; use
// a small epsilon (e.g. 0.0001) to demand a strictly-zero rate.
type Gates struct {
	// MinSuccessRate is the minimum fraction of attempts answered with a
	// non-degraded 2xx.
	MinSuccessRate float64 `json:"min_success_rate,omitempty"`
	// MaxErrorRate caps the fraction of attempts that failed outright:
	// transport errors, timeouts, and non-2xx statuses other than 503
	// sheds. Sheds and degraded answers are correct overload behavior and
	// are gated separately.
	MaxErrorRate float64 `json:"max_error_rate,omitempty"`
	// MaxShedRate caps the fraction of attempts shed with 503.
	MaxShedRate float64 `json:"max_shed_rate,omitempty"`
	// MaxDegradedRate caps the fraction of attempts answered by the Qian
	// baseline instead of a minimal solve.
	MaxDegradedRate float64 `json:"max_degraded_rate,omitempty"`
	// MaxP99MS caps the client-observed p99 latency in milliseconds.
	MaxP99MS float64 `json:"max_p99_ms,omitempty"`
	// MaxAvailBurn5m caps the server's worst per-route 5-minute
	// availability burn rate (scraped slo_*_avail_burn_5m_milli / 1000;
	// 1.0 burns the error budget exactly at its sustainable rate).
	MaxAvailBurn5m float64 `json:"max_avail_burn_5m,omitempty"`
}

// Stage is one phase of a load plan.
type Stage struct {
	Name string `json:"name"`
	// Kind is ramp, storm, soak, or chaos. Only ramp changes engine
	// behavior (QPS climbs linearly from RampFromQPS to QPS); the rest are
	// descriptive, with chaos stages conventionally carrying a Fault spec.
	Kind string `json:"kind"`
	// Seconds is the stage duration.
	Seconds float64 `json:"seconds"`
	// Clients is the number of concurrent client goroutines.
	Clients int `json:"clients"`
	// QPS is the stage's target aggregate request rate; 0 leaves the
	// clients unthrottled (storm).
	QPS float64 `json:"qps,omitempty"`
	// RampFromQPS is the starting rate of a ramp stage (defaults to
	// QPS/10).
	RampFromQPS float64 `json:"ramp_from_qps,omitempty"`
	Mix         Mix     `json:"mix"`
	// Fault is a server-side fault spec (internal/fault's ParseSpec
	// grammar) armed over the debug listener's /debug/fault for the
	// duration of the stage and disarmed after — minupd must run with
	// -fault-admin. Empty leaves the injector alone.
	Fault string `json:"fault,omitempty"`
	Gates Gates  `json:"gates"`
}

func (s Stage) duration() time.Duration { return time.Duration(s.Seconds * float64(time.Second)) }

// Plan is a full load run: an RNG seed (the whole run is deterministic on
// the client side given one seed), the per-client mutation workload shape,
// and the stage sequence.
type Plan struct {
	Seed int64 `json:"seed"`
	// Workload shapes each client's MutationStream. Seed and NamePrefix
	// are owned by the runner (per-client), so only the shape fields
	// matter here; zero fields take defaults (see DefaultWorkload).
	Workload workload.MutationSpec `json:"workload"`
	Stages   []Stage               `json:"stages"`
}

// DefaultWorkload is the mutation-stream shape used when a plan leaves
// Workload zero: modest policies with a put-heavy mix so cached solves
// always have live targets.
func DefaultWorkload() workload.MutationSpec {
	return workload.MutationSpec{
		NumPolicies:      8,
		NumMutations:     512,
		PutFraction:      0.3,
		DeleteFraction:   0.05,
		AttrsPerPolicy:   6,
		ConsPerPut:       4,
		ConsPerAppend:    2,
		LevelRHSFraction: 0.4,
		NewAttrFraction:  0.05,
	}
}

// DefaultMix is the standard request mix: mostly cached solves (the hot
// path at scale), a steady mutation trickle, some cold solves, a few
// traces, and a thin stream of problem-frontend creates.
func DefaultMix() Mix {
	return Mix{Mutate: 0.15, CachedSolve: 0.55, ColdSolve: 0.20, Trace: 0.05, Problem: 0.05}
}

// DefaultPlan is the canonical staged run: ramp to find the knee, storm to
// prove overload behavior stays typed (shed/degrade, not errors), soak for
// sustained-rate health, and a chaos stage that slows solver steps and WAL
// fsyncs under live traffic. Stage seconds are sized for a local run;
// cmd/minload's -stage-seconds scales them down for CI smoke.
func DefaultPlan() Plan {
	mix := DefaultMix()
	return Plan{
		Seed:     1,
		Workload: DefaultWorkload(),
		Stages: []Stage{
			{
				Name: "ramp", Kind: "ramp", Seconds: 20, Clients: 8,
				QPS: 300, RampFromQPS: 20, Mix: mix,
				// The burn gate rides on the first stage: its 5-minute
				// window is still clean, while later stages would see the
				// storm's deliberate degrading in theirs.
				Gates: Gates{MinSuccessRate: 0.97, MaxErrorRate: 0.01, MaxP99MS: 250, MaxAvailBurn5m: 50},
			},
			{
				Name: "storm", Kind: "storm", Seconds: 15, Clients: 32,
				Mix: mix,
				// Under an unthrottled storm the right behavior is typed
				// overload handling: shed or degrade freely, never error.
				Gates: Gates{MaxErrorRate: 0.02},
			},
			{
				Name: "soak", Kind: "soak", Seconds: 120, Clients: 8,
				QPS: 150, Mix: mix,
				Gates: Gates{MinSuccessRate: 0.97, MaxErrorRate: 0.01, MaxP99MS: 250},
			},
			{
				Name: "chaos", Kind: "chaos", Seconds: 30, Clients: 8,
				QPS: 100, Mix: mix,
				Fault: "solve.step:delay:~0.02:2ms;wal.fsync:delay:~0.05:5ms",
				Gates: Gates{MinSuccessRate: 0.80, MaxErrorRate: 0.02},
			},
		},
	}
}

// Validate checks a plan is runnable and fills workload defaults.
func (p *Plan) Validate() error {
	if len(p.Stages) == 0 {
		return fmt.Errorf("load: plan has no stages")
	}
	if p.Workload.NumPolicies == 0 && p.Workload.NumMutations == 0 {
		p.Workload = DefaultWorkload()
	}
	seen := make(map[string]bool, len(p.Stages))
	for i := range p.Stages {
		st := &p.Stages[i]
		if st.Name == "" {
			return fmt.Errorf("load: stage %d has no name", i)
		}
		if seen[st.Name] {
			return fmt.Errorf("load: duplicate stage name %q", st.Name)
		}
		seen[st.Name] = true
		if st.Seconds <= 0 {
			return fmt.Errorf("load: stage %q: non-positive duration", st.Name)
		}
		if st.Clients <= 0 {
			return fmt.Errorf("load: stage %q: needs at least one client", st.Name)
		}
		if st.Mix.total() <= 0 {
			return fmt.Errorf("load: stage %q: empty request mix", st.Name)
		}
		if st.Kind == "ramp" && st.QPS <= 0 {
			return fmt.Errorf("load: stage %q: a ramp stage needs a target QPS", st.Name)
		}
		if st.RampFromQPS == 0 && st.Kind == "ramp" {
			st.RampFromQPS = st.QPS / 10
		}
	}
	return nil
}

// Filter returns a copy of the plan keeping only the named stages (comma
// list), in plan order. An unknown name is an error, so a typoed CI
// invocation cannot silently run zero stages.
func (p Plan) Filter(names string) (Plan, error) {
	want := make(map[string]bool)
	for _, n := range strings.Split(names, ",") {
		if n = strings.TrimSpace(n); n != "" {
			want[n] = true
		}
	}
	out := p
	out.Stages = nil
	for _, st := range p.Stages {
		if want[st.Name] {
			out.Stages = append(out.Stages, st)
			delete(want, st.Name)
		}
	}
	if len(want) > 0 {
		var unknown []string
		for n := range want {
			unknown = append(unknown, n)
		}
		return Plan{}, fmt.Errorf("load: unknown stage(s) %s", strings.Join(unknown, ", "))
	}
	return out, nil
}

// ReadPlan decodes a JSON plan, rejecting unknown fields so a typoed gate
// name fails the run instead of silently not gating.
func ReadPlan(r io.Reader) (Plan, error) {
	var p Plan
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		return Plan{}, fmt.Errorf("load: decoding plan: %w", err)
	}
	return p, nil
}

// ReadPlanFile is ReadPlan over a file path.
func ReadPlanFile(path string) (Plan, error) {
	f, err := os.Open(path)
	if err != nil {
		return Plan{}, err
	}
	defer f.Close()
	return ReadPlan(f)
}
