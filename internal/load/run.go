package load

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	// The frontend packages register the problem families ("suppress",
	// "depinf") into the workload registry the problem op draws from.
	_ "minup/internal/frontend/depinf"
	_ "minup/internal/frontend/suppress"
	"minup/internal/obs"
	"minup/internal/workload"
)

// Outcome classifies one request.
type Outcome int

const (
	// OutcomeSuccess is a non-degraded 2xx.
	OutcomeSuccess Outcome = iota
	// OutcomeDegraded is a 2xx carrying "degraded": true — the Qian
	// baseline served in place of a minimal solve.
	OutcomeDegraded
	// OutcomeShed is a 503: the admission gate refused the request, the
	// correct behavior past saturation.
	OutcomeShed
	// OutcomeError is everything else: transport failures, timeouts, and
	// unexpected statuses.
	OutcomeError
)

// opNames index the per-op result blocks; op codes are the Mix fields.
const (
	opMutate  = "mutate"
	opCached  = "cached_solve"
	opCold    = "cold_solve"
	opTrace   = "trace"
	opProblem = "problem"
)

// problemFamilies are the frontend families problem draws alternate
// through, and problemSize the generator size knob (small, so a problem
// create costs about as much as a policy put).
var problemFamilies = []string{"suppress", "depinf"}

const problemSize = 3

// maxReadLagFrames is the replica-lag ceiling for read-target ranking: a
// follower whose lag is unknown or beyond this many frames is skipped for
// reads when fresher members exist.
const maxReadLagFrames = 256

// maxRedirectHops bounds how many 307 leader redirects one logical
// request follows before giving up (covers a leader change mid-chain).
const maxRedirectHops = 3

// Runner drives a Plan against one minupd, or against every member of a
// replication cluster.
type Runner struct {
	// BaseURL is the service listener, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Addrs lists every cluster member's base URL. Clients spread reads
	// across members round-robin; mutations follow 307 redirects to the
	// leader (bounded hops, method and body preserved) and remember the
	// X-Cluster-Leader hint so later mutations go straight there. Empty
	// means the single BaseURL target.
	Addrs []string
	// DebugURL is the debug listener (for /debug/fault chaos arming);
	// empty refuses plans with fault stages.
	DebugURL string
	// OutDir receives one JSON file per stage plus summary.json; empty
	// writes nothing.
	OutDir string
	// Client is the HTTP client; nil builds one sized for the plan's
	// widest stage.
	Client *http.Client
	// RequestTimeout bounds each request (default 10s).
	RequestTimeout time.Duration
	// Logf, when set, receives one progress line per stage.
	Logf func(format string, args ...any)

	hasStatic bool
	// hasProblems reports whether the target serves the problem-frontend
	// routes; older servers answer 404 on GET /problems, and problem draws
	// then fall back to mutations the way cold solves fall back to cached.
	hasProblems bool
	targets     []string
	// readTargets is the preflight's load-balanced ordering of targets for
	// read traffic: leader and fresh followers first, lag-unknown or
	// badly lagging members excluded (falls back to all targets when the
	// /cluster hints are unavailable, e.g. single-node mode).
	readTargets []string
	// leaderHint caches the last X-Cluster-Leader redirect target so
	// mutations skip the follower round-trip; cleared on no-leader answers.
	leaderHint atomic.Value // string
}

func (r *Runner) logf(format string, args ...any) {
	if r.Logf != nil {
		r.Logf(format, args...)
	}
}

// client is one load-generating goroutine's persistent state: a seeded RNG
// for op draws, its own MutationStream under a private name prefix (so its
// mutations stay valid regardless of interleaving with other clients), and
// the set of policies it knows to be live for cached solves.
type client struct {
	id     int
	base   string // this client's home member (reads stay here)
	rng    *rand.Rand
	spec   workload.MutationSpec
	stream []workload.Mutation
	next   int
	gen    int64
	live   []string
	liveAt map[string]int // name -> index in live, for O(1) delete
	// problems counts this client's problem creates, alternating the
	// family and seeding the generator deterministically.
	problems int64
}

func newClient(id int, planSeed int64, spec workload.MutationSpec) (*client, error) {
	c := &client{
		id:     id,
		rng:    rand.New(rand.NewSource(planSeed<<16 + int64(id))),
		spec:   spec,
		liveAt: make(map[string]int),
	}
	c.spec.NamePrefix = fmt.Sprintf("c%03dp", id)
	return c, c.refill(planSeed)
}

// refill regenerates the client's stream. Each generation is itself valid
// from any catalog state: a stream's first op on every name is a put, so
// replaying a fresh generation over leftovers just replaces them.
func (c *client) refill(planSeed int64) error {
	c.gen++
	c.spec.Seed = planSeed<<16 + int64(c.id) + c.gen*1_000_003
	stream, err := workload.MutationStream(c.spec)
	if err != nil {
		return err
	}
	c.stream = stream
	c.next = 0
	// A fresh generation restarts its own live tracking: it only appends
	// to and deletes names it has put itself.
	c.live = c.live[:0]
	clear(c.liveAt)
	return nil
}

func (c *client) markLive(name string) {
	if _, ok := c.liveAt[name]; ok {
		return
	}
	c.liveAt[name] = len(c.live)
	c.live = append(c.live, name)
}

func (c *client) markDead(name string) {
	i, ok := c.liveAt[name]
	if !ok {
		return
	}
	last := len(c.live) - 1
	c.live[i] = c.live[last]
	c.liveAt[c.live[i]] = i
	c.live = c.live[:last]
	delete(c.liveAt, name)
}

// pickOp draws a request kind from the stage mix, resolving fallbacks: no
// static instance turns cold/trace draws into cached solves, no /problems
// routes turn problem draws into mutations, and a cached draw with no live
// policy becomes a mutation (whose stream is guaranteed to start with a
// put).
func (c *client) pickOp(mix Mix, hasStatic, hasProblems bool) string {
	r := c.rng.Float64() * mix.total()
	var op string
	switch {
	case r < mix.Mutate:
		op = opMutate
	case r < mix.Mutate+mix.CachedSolve:
		op = opCached
	case r < mix.Mutate+mix.CachedSolve+mix.ColdSolve:
		op = opCold
	case r < mix.Mutate+mix.CachedSolve+mix.ColdSolve+mix.Trace:
		op = opTrace
	default:
		op = opProblem
	}
	if (op == opCold || op == opTrace) && !hasStatic {
		op = opCached
	}
	if op == opProblem && !hasProblems {
		op = opMutate
	}
	if op == opCached && len(c.live) == 0 {
		op = opMutate
	}
	return op
}

// stageRecorder accumulates one stage's client-side measurements.
type stageRecorder struct {
	mu      sync.Mutex
	hist    *obs.Histogram            // all ops
	perOp   map[string]*obs.Histogram // per request kind
	counts  map[string]*Counts
	total   Counts
	maxUS   uint64
	samples int
}

func newStageRecorder() *stageRecorder {
	r := &stageRecorder{
		hist:   obs.NewHistogram(obs.DurationBucketsUS),
		perOp:  make(map[string]*obs.Histogram),
		counts: make(map[string]*Counts),
	}
	for _, op := range []string{opMutate, opCached, opCold, opTrace, opProblem} {
		r.perOp[op] = obs.NewHistogram(obs.DurationBucketsUS)
		r.counts[op] = &Counts{}
	}
	return r
}

func (r *stageRecorder) record(op string, outcome Outcome, d time.Duration, redirects int) {
	us := uint64(d.Microseconds())
	r.hist.Observe(us)
	r.perOp[op].Observe(us)
	r.mu.Lock()
	defer r.mu.Unlock()
	if us > r.maxUS {
		r.maxUS = us
	}
	for _, c := range []*Counts{&r.total, r.counts[op]} {
		c.Attempts++
		c.Redirects += uint64(redirects)
		switch outcome {
		case OutcomeSuccess:
			c.Success++
		case OutcomeDegraded:
			c.Degraded++
		case OutcomeShed:
			c.Shed++
		case OutcomeError:
			c.Errors++
		}
	}
}

// Run executes the plan and returns its report. A gate failure is not an
// error — the report carries Passed=false and per-stage reasons — while a
// broken environment (unreachable server, chaos stage without a debug
// listener, unwritable result dir) is.
func (r *Runner) Run(ctx context.Context, plan Plan) (*Report, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	if r.RequestTimeout <= 0 {
		r.RequestTimeout = 10 * time.Second
	}
	r.targets = r.targets[:0]
	for _, a := range r.Addrs {
		if a = strings.TrimSpace(a); a != "" {
			r.targets = append(r.targets, strings.TrimRight(a, "/"))
		}
	}
	if len(r.targets) == 0 {
		if r.BaseURL == "" {
			return nil, fmt.Errorf("load: no target address configured")
		}
		r.targets = []string{strings.TrimRight(r.BaseURL, "/")}
	}
	if r.BaseURL == "" {
		r.BaseURL = r.targets[0]
	}
	maxClients := 0
	for _, st := range plan.Stages {
		if st.Clients > maxClients {
			maxClients = st.Clients
		}
		if st.Fault != "" && r.DebugURL == "" {
			return nil, fmt.Errorf("load: stage %q arms a fault spec but no debug URL is configured", st.Name)
		}
	}
	if r.Client == nil {
		r.Client = &http.Client{
			Transport: &http.Transport{
				MaxIdleConns:        maxClients * 2,
				MaxIdleConnsPerHost: maxClients * 2,
			},
			// Leader redirects are followed by hand in execute so hops are
			// bounded, counted, and the X-Cluster-Leader hint is captured.
			CheckRedirect: func(*http.Request, []*http.Request) error {
				return http.ErrUseLastResponse
			},
		}
	}

	if err := r.preflight(ctx); err != nil {
		return nil, err
	}

	readTargets := r.readTargets
	if len(readTargets) == 0 {
		readTargets = r.targets
	}
	clients := make([]*client, maxClients)
	for i := range clients {
		c, err := newClient(i, plan.Seed, plan.Workload)
		if err != nil {
			return nil, err
		}
		c.base = readTargets[i%len(readTargets)]
		clients[i] = c
	}

	report := &Report{
		Plan:      plan,
		Target:    strings.Join(r.targets, ","),
		StartedAt: time.Now().UTC(),
		Passed:    true,
	}
	if m, err := r.scrape(ctx); err == nil {
		if labels, ok := m.Labels("build_info"); ok {
			report.BuildInfo = labels
		}
	}

	before, err := r.scrape(ctx)
	if err != nil {
		return nil, fmt.Errorf("load: initial metrics scrape: %w", err)
	}
	for i, st := range plan.Stages {
		res, err := r.runStage(ctx, st, clients[:st.Clients], before)
		if err != nil {
			return nil, err
		}
		// The post-stage scrape doubles as the next stage's baseline.
		if res.scrapedAfter != nil {
			before = res.scrapedAfter
		}
		report.Stages = append(report.Stages, *res)
		if !res.GatePassed {
			report.Passed = false
		}
		if r.OutDir != "" {
			if err := writeStageFile(r.OutDir, i, res); err != nil {
				return nil, err
			}
		}
		r.logf("stage %s: %s", st.Name, res.summaryLine())
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
	}
	report.DurationSeconds = time.Since(report.StartedAt).Seconds()
	if r.OutDir != "" {
		if err := writeSummaryFile(r.OutDir, report); err != nil {
			return nil, err
		}
	}
	return report, nil
}

// preflight verifies every target is alive and discovers which optional
// surfaces exist: the static /solve instance (decides cold-solve/trace
// fallbacks) and the /problems frontend routes (decides the problem-op
// fallback), then ranks the targets for read traffic.
func (r *Runner) preflight(ctx context.Context) error {
	ctx, cancel := context.WithTimeout(ctx, r.RequestTimeout)
	defer cancel()
	for _, target := range r.targets {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, target+"/healthz", nil)
		if err != nil {
			return err
		}
		resp, err := r.Client.Do(req)
		if err != nil {
			return fmt.Errorf("load: target %s unreachable: %w", target, err)
		}
		drain(resp)
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("load: %s/healthz answered %d", target, resp.StatusCode)
		}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.BaseURL+"/solve", nil)
	if err != nil {
		return err
	}
	resp, err := r.Client.Do(req)
	if err != nil {
		return fmt.Errorf("load: probing /solve: %w", err)
	}
	drain(resp)
	r.hasStatic = resp.StatusCode != http.StatusNotFound
	if !r.hasStatic {
		r.logf("target has no static instance; cold-solve and trace draws fall back to cached solves")
	}
	req, err = http.NewRequestWithContext(ctx, http.MethodGet, r.BaseURL+"/problems", nil)
	if err != nil {
		return err
	}
	resp, err = r.Client.Do(req)
	if err != nil {
		return fmt.Errorf("load: probing /problems: %w", err)
	}
	drain(resp)
	r.hasProblems = resp.StatusCode == http.StatusOK
	if !r.hasProblems {
		r.logf("target has no problem frontends; problem draws fall back to mutations")
	}
	r.readTargets = r.rankReadTargets(ctx)
	return nil
}

// clusterProbe is the slice of the GET /cluster payload the read-target
// ranking consumes: the node's role and replication freshness, plus the
// local admission-load hints.
type clusterProbe struct {
	Role            string `json:"role"`
	ReplicaLag      uint64 `json:"replica_lag_frames"`
	ReplicaLagKnown bool   `json:"replica_lag_known"`
	Load            struct {
		Inflight   int   `json:"inflight"`
		QueueDepth int64 `json:"queue_depth"`
	} `json:"load"`
}

// rankReadTargets orders the targets for read traffic using the /cluster
// load-balancing hints: fresh followers first (lowest lag, then lightest
// load), then the leader, so reads prefer low-lag followers and leave the
// leader capacity for the write path. Members whose lag is unknown (still
// catching up, partitioned) or beyond maxReadLagFrames are excluded.
// Returns nil — meaning "use every target round-robin" — when the hints
// are unavailable: single-node servers answer 404 on /cluster.
func (r *Runner) rankReadTargets(ctx context.Context) []string {
	if len(r.targets) < 2 {
		return nil
	}
	type ranked struct {
		target string
		leader bool
		lag    uint64
		load   int64
	}
	var eligible []ranked
	probed := true
	for _, target := range r.targets {
		probeCtx, cancel := context.WithTimeout(ctx, r.RequestTimeout)
		req, err := http.NewRequestWithContext(probeCtx, http.MethodGet, target+"/cluster", nil)
		if err != nil {
			cancel()
			return nil
		}
		resp, err := r.Client.Do(req)
		if err != nil {
			// An unreachable member was already fatal in preflight; a probe
			// race here just disables ranking.
			cancel()
			return nil
		}
		if resp.StatusCode != http.StatusOK {
			drain(resp)
			cancel()
			probed = false
			break
		}
		var probe clusterProbe
		err = json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&probe)
		drain(resp)
		cancel()
		if err != nil {
			return nil
		}
		switch {
		case probe.Role == "leader":
			eligible = append(eligible, ranked{target: target, leader: true, load: int64(probe.Load.Inflight) + probe.Load.QueueDepth})
		case probe.Role == "follower" && probe.ReplicaLagKnown && probe.ReplicaLag <= maxReadLagFrames:
			eligible = append(eligible, ranked{target: target, lag: probe.ReplicaLag, load: int64(probe.Load.Inflight) + probe.Load.QueueDepth})
		default:
			r.logf("read ranking: skipping %s (role=%s lag_known=%v lag=%d)",
				target, probe.Role, probe.ReplicaLagKnown, probe.ReplicaLag)
		}
	}
	if !probed || len(eligible) == 0 {
		return nil
	}
	sort.SliceStable(eligible, func(i, j int) bool {
		if eligible[i].leader != eligible[j].leader {
			return !eligible[i].leader // followers first
		}
		if eligible[i].lag != eligible[j].lag {
			return eligible[i].lag < eligible[j].lag
		}
		return eligible[i].load < eligible[j].load
	})
	out := make([]string, len(eligible))
	for i, e := range eligible {
		out[i] = e.target
	}
	r.logf("read ranking: %s", strings.Join(out, " > "))
	return out
}

func (r *Runner) runStage(ctx context.Context, st Stage, clients []*client, before *obs.PromMetrics) (*StageResult, error) {
	if st.Fault != "" {
		if err := r.armFault(ctx, st.Fault); err != nil {
			return nil, fmt.Errorf("load: stage %q: arming fault spec: %w", st.Name, err)
		}
		// Always disarm, even on an error path: a later stage (or a later
		// run) must not inherit this stage's chaos.
		defer func() {
			disarmCtx, cancel := context.WithTimeout(context.WithoutCancel(ctx), r.RequestTimeout)
			defer cancel()
			if err := r.armFault(disarmCtx, ""); err != nil {
				r.logf("stage %s: disarming fault spec failed: %v", st.Name, err)
			}
		}()
	}

	rec := newStageRecorder()
	stageCtx, cancel := context.WithTimeout(ctx, st.duration())
	start := time.Now()
	var wg sync.WaitGroup
	for _, c := range clients {
		wg.Add(1)
		go func(c *client) {
			defer wg.Done()
			r.clientLoop(stageCtx, st, c, rec, start, len(clients))
		}(c)
	}
	wg.Wait()
	cancel()
	elapsed := time.Since(start)

	res := &StageResult{
		Name:            st.Name,
		Kind:            st.Kind,
		Gates:           st.Gates,
		Fault:           st.Fault,
		Clients:         len(clients),
		TargetQPS:       st.QPS,
		StartedAt:       start.UTC(),
		DurationSeconds: elapsed.Seconds(),
		Total:           rec.total,
	}
	res.PerOp = make(map[string]OpResult, len(rec.counts))
	for op, counts := range rec.counts {
		if counts.Attempts == 0 {
			continue
		}
		res.PerOp[op] = OpResult{Counts: *counts, Latency: latencySummary(rec.perOp[op].Snapshot(), 0)}
	}
	res.Latency = latencySummary(rec.hist.Snapshot(), rec.maxUS)
	if elapsed > 0 {
		res.ThroughputRPS = float64(rec.total.Attempts) / elapsed.Seconds()
	}

	// Scrape the server between stages: counter deltas across the stage
	// plus the current burn-rate and runtime gauges.
	after, err := r.scrape(ctx)
	if err != nil {
		// A mid-run scrape failure degrades the report, not the run: the
		// client-side gates still judge the stage.
		r.logf("stage %s: metrics scrape failed: %v", st.Name, err)
	} else {
		res.Server = serverSample(before, after)
		res.scrapedAfter = after
	}
	res.GateFailures = st.Gates.Evaluate(res)
	res.GatePassed = len(res.GateFailures) == 0
	return res, nil
}

// clientLoop issues requests until the stage context expires, pacing to
// the stage's (possibly ramping) QPS share for this client.
func (r *Runner) clientLoop(ctx context.Context, st Stage, c *client, rec *stageRecorder, start time.Time, clients int) {
	dur := st.duration()
	nextAt := time.Now()
	for {
		if ctx.Err() != nil {
			return
		}
		if st.QPS > 0 {
			qps := st.QPS
			if st.Kind == "ramp" {
				f := float64(time.Since(start)) / float64(dur)
				if f > 1 {
					f = 1
				}
				qps = st.RampFromQPS + (st.QPS-st.RampFromQPS)*f
			}
			interval := time.Duration(float64(clients) / qps * float64(time.Second))
			if d := time.Until(nextAt); d > 0 {
				select {
				case <-ctx.Done():
					return
				case <-time.After(d):
				}
				nextAt = nextAt.Add(interval)
			} else {
				// Fell behind (slow responses): restart the clock rather
				// than bursting to catch up.
				nextAt = time.Now().Add(interval)
			}
		}
		op := c.pickOp(st.Mix, r.hasStatic, r.hasProblems)
		outcome, d, hops, err := r.execute(ctx, c, op)
		if err != nil && ctx.Err() != nil {
			return // stage ended mid-request; not the server's fault
		}
		rec.record(op, outcome, d, hops)
	}
}

// mutationBody is the JSON body shape of policy puts and appends.
type mutationBody struct {
	Lattice     string `json:"lattice,omitempty"`
	Constraints string `json:"constraints"`
}

// execute performs one request and classifies it. Mutations start at the
// cached leader hint (when known) and follow up to maxRedirectHops 307
// leader redirects, re-sending the same method and body each hop. A 503
// carrying X-Cluster-State (election window, replication stall) counts as
// degraded — the cluster still serves reads but cannot commit just now —
// while an untyped 503 remains an admission shed. The returned error is
// only consulted to detect stage teardown; it is already folded into the
// outcome.
func (r *Runner) execute(ctx context.Context, c *client, op string) (Outcome, time.Duration, int, error) {
	var (
		method = http.MethodGet
		path   string
		body   []byte
	)
	var mut workload.Mutation
	switch op {
	case opMutate:
		if c.next >= len(c.stream) {
			if err := c.refill(0); err != nil {
				return OutcomeError, 0, 0, err
			}
		}
		mut = c.stream[c.next]
		c.next++
		var err error
		switch mut.Op {
		case workload.OpPut:
			method = http.MethodPut
			path = "/policies/" + mut.Name
			body, err = json.Marshal(mutationBody{Lattice: mut.Lattice, Constraints: mut.Constraints})
		case workload.OpAppend:
			method = http.MethodPost
			path = "/policies/" + mut.Name + "/constraints"
			body, err = json.Marshal(mutationBody{Constraints: mut.Constraints})
		case workload.OpDelete:
			method = http.MethodDelete
			path = "/policies/" + mut.Name
		}
		if err != nil {
			return OutcomeError, 0, 0, err
		}
	case opCached:
		path = "/policies/" + c.live[c.rng.Intn(len(c.live))] + "/solve"
	case opCold:
		path = "/solve"
	case opTrace:
		path = "/trace"
	case opProblem:
		// Alternate the frontend families with a per-client deterministic
		// seed; the instance lands under a client-scoped policy name so
		// later cached solves can target it.
		family := problemFamilies[c.problems%int64(len(problemFamilies))]
		fi, err := workload.GenerateFamily(family, c.spec.Seed+c.problems*7919, problemSize)
		if err != nil {
			return OutcomeError, 0, 0, err
		}
		probName := fmt.Sprintf("c%03df%04d", c.id, c.problems)
		c.problems++
		method = http.MethodPost
		path = "/problems/" + family + "?name=" + probName
		body = fi.JSON
		mut = workload.Mutation{Op: workload.OpPut, Name: probName}
	}

	// Reads stay on the client's home member; mutations (policy and
	// problem writes alike) go straight to the last known leader when a
	// redirect has taught us one.
	url := c.base + path
	if op == opMutate || op == opProblem {
		if hint, _ := r.leaderHint.Load().(string); hint != "" {
			url = hint + path
		}
	}

	reqCtx, cancel := context.WithTimeout(ctx, r.RequestTimeout)
	defer cancel()
	start := time.Now()
	var resp *http.Response
	hops := 0
	for {
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(reqCtx, method, url, rd)
		if err != nil {
			return OutcomeError, 0, hops, err
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err = r.Client.Do(req)
		if err != nil {
			return OutcomeError, time.Since(start), hops, err
		}
		if resp.StatusCode != http.StatusTemporaryRedirect || hops >= maxRedirectHops {
			break
		}
		// A follower bounced us to the leader: remember the hint for later
		// mutations and retry there with the same method and body.
		hint := resp.Header.Get("X-Cluster-Leader")
		loc := resp.Header.Get("Location")
		drain(resp)
		hops++
		switch {
		case loc != "":
			url = loc
		case hint != "":
			url = hint + path
		default:
			return OutcomeError, time.Since(start), hops, nil
		}
		if hint != "" {
			r.leaderHint.Store(hint)
		}
	}
	d := time.Since(start)
	outcome := OutcomeError
	switch {
	case resp.StatusCode == http.StatusServiceUnavailable:
		if resp.Header.Get("X-Cluster-State") != "" {
			// Election window or replication stall: typed cluster
			// degradation, not an overload shed. Drop the stale hint so the
			// next mutation rediscovers the leader via its home member.
			outcome = OutcomeDegraded
			r.leaderHint.Store("")
		} else {
			outcome = OutcomeShed
		}
	case resp.StatusCode >= 200 && resp.StatusCode < 300:
		outcome = OutcomeSuccess
		if op != opMutate && op != opProblem && resp.StatusCode == http.StatusOK {
			// Solve-shaped responses may carry the degraded marker.
			var probe struct {
				Degraded bool `json:"degraded"`
			}
			if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&probe); err == nil && probe.Degraded {
				outcome = OutcomeDegraded
			}
		}
	}
	drain(resp)

	// Keep the client's live-set in sync with the mutations the server
	// actually accepted, so cached solves only target policies that exist.
	// A stored problem is an ordinary policy, so it joins the live set too.
	if (op == opMutate || op == opProblem) && outcome == OutcomeSuccess {
		switch mut.Op {
		case workload.OpPut:
			c.markLive(mut.Name)
		case workload.OpDelete:
			c.markDead(mut.Name)
		}
	}
	return outcome, d, hops, nil
}

// armFault posts a fault spec to the server's /debug/fault; an empty spec
// disarms. The server must run with -fault-admin.
func (r *Runner) armFault(ctx context.Context, spec string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, r.DebugURL+"/debug/fault", strings.NewReader(spec))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "text/plain")
	resp, err := r.Client.Do(req)
	if err != nil {
		return err
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("POST /debug/fault: %d: %s (is minupd running with -fault-admin?)", resp.StatusCode, bytes.TrimSpace(msg))
	}
	return nil
}

// scrape fetches and parses the server's Prometheus exposition.
func (r *Runner) scrape(ctx context.Context) (*obs.PromMetrics, error) {
	ctx, cancel := context.WithTimeout(context.WithoutCancel(ctx), r.RequestTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.BaseURL+"/metrics?format=prometheus", nil)
	if err != nil {
		return nil, err
	}
	resp, err := r.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /metrics: %d", resp.StatusCode)
	}
	return obs.ParsePrometheus(io.LimitReader(resp.Body, 8<<20))
}

// drain consumes and closes a response body so the connection is reused.
func drain(resp *http.Response) {
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
}
