package constraint

import (
	"context"
	"errors"
	"fmt"
	"time"

	"minup/internal/graph"
	"minup/internal/lattice"
	"minup/internal/obs"
)

// ErrFrozen is returned by Set mutators (AddAttr, Add, AddUpper) after the
// set has been frozen by Compile. A frozen set is guaranteed to agree with
// every Compiled snapshot taken from it, so sharing the snapshot across
// goroutines is safe. Use errors.Is(err, ErrFrozen) to detect it.
var ErrFrozen = errors.New("constraint: set is frozen by Compile")

// Compiled is an immutable snapshot of a constraint Set: the attribute
// table, the constraint and upper-bound slices, the dependency digraph, its
// SCC condensation with the §4 priority numbering, the Constr[A] /
// into-constraint adjacency, and (when §6 upper bounds are present) the
// derived firm per-attribute bounds. All of this is the one-time "compile"
// cost of Theorem 5.2's complexity argument; a Compiled value is safe for
// concurrent use by any number of solver sessions.
//
// Obtain one with Set.Compile (which freezes the source set so it can never
// drift from the snapshot) or Set.Snapshot (which leaves the source
// mutable — later mutations are NOT reflected in the snapshot, and mutating
// the set concurrently with solves of the snapshot is a data race).
type Compiled struct {
	src         *Set // private frozen copy of the source set
	g           *graph.Digraph
	pr          *graph.PriorityResult
	onLHS       [][]int
	into        [][]int
	acyclic     bool
	totalSize   int
	ub          Assignment // §6 firm bounds; nil when the set has no upper bounds
	ubConflicts []string   // non-nil when the upper bounds are inconsistent
	cstats      CompileStats
	sink        obs.EventSink // default event sink for solves of this snapshot
}

// CompileStats reports the one-time work performed by Compile/Snapshot —
// the amortized cost of Theorem 5.2's complexity argument — plus the §6
// fixpoint's operation counts, the compile-side counterpart of the solver's
// per-solve Result.Stats.
type CompileStats struct {
	// Attrs, Constraints, UpperBoundCons describe the snapshot's shape.
	Attrs, Constraints, UpperBoundCons int
	// TotalSize is the paper's S = Σ(|lhs|+1).
	TotalSize int
	// SCCs is the number of strongly connected components (priority sets).
	SCCs int
	// UBPops counts §6 fixpoint worklist pops; UBTightenings counts the
	// bound updates they caused. Both are zero without upper bounds.
	UBPops, UBTightenings int
	// Duration is the wall time of the compilation.
	Duration time.Duration
}

// Compile freezes the set and returns its immutable compiled form. After
// Compile, AddAttr/Add/AddUpper return ErrFrozen, so the snapshot can never
// silently go stale. Compile is idempotent; repeated calls recompute the
// snapshot (identical content) but freeze only once.
func (s *Set) Compile() *Compiled {
	s.frozen = true
	return s.snapshot()
}

// CompileContext is Compile with tracing: when ctx carries an obs span, the
// compilation emits a "compile" child span with per-phase children ("graph"
// for the dependency digraph and adjacency indexes, "scc" for the
// condensation and priority numbering, "upper-bounds" for the §6 fixpoint).
// With an uninstrumented context it is exactly Compile.
func (s *Set) CompileContext(ctx context.Context) *Compiled {
	s.frozen = true
	return s.snapshotSpan(obs.SpanFromContext(ctx))
}

// Snapshot returns an immutable compiled form without freezing the set.
// The snapshot reflects the set as of the call; constraints or bounds added
// afterwards are not visible to it. Intended for one-shot solves and for
// internal compatibility shims — callers that share a snapshot between
// goroutines while continuing to mutate the set get undefined behavior;
// use Compile for that.
func (s *Set) Snapshot() *Compiled { return s.snapshot() }

// Frozen reports whether the set has been frozen by Compile.
func (s *Set) Frozen() bool { return s.frozen }

func (s *Set) snapshot() *Compiled { return s.snapshotSpan(nil) }

// snapshotSpan compiles the set, emitting a "compile" span with per-phase
// children under parent when non-nil.
func (s *Set) snapshotSpan(parent *obs.Span) *Compiled {
	start := time.Now()
	var sp, ph *obs.Span
	if parent != nil {
		sp = parent.Child("compile")
	}
	// The copy shares the backing arrays: Set mutators only append (never
	// overwrite), so the elements visible through these slice headers are
	// immutable even if the source set later grows and reallocates.
	src := &Set{
		lat:    s.lat,
		names:  s.names,
		index:  s.index,
		cons:   s.cons,
		upper:  s.upper,
		frozen: true,
	}
	if sp != nil {
		ph = sp.Child("graph")
	}
	c := &Compiled{
		src:       src,
		g:         src.Graph(),
		onLHS:     src.ConstraintsOn(),
		into:      src.ConstraintsInto(),
		totalSize: src.TotalSize(),
	}
	if ph != nil {
		ph.End()
		ph = sp.Child("scc")
	}
	c.pr = graph.PrioritySCC(c.g)
	c.acyclic = graph.IsAcyclic(c.g)
	if ph != nil {
		ph.End()
	}
	if len(src.upper) > 0 {
		if sp != nil {
			ph = sp.Child("upper-bounds")
		}
		c.ub, c.ubConflicts = upperBoundFixpoint(src, &c.cstats)
		if ph != nil {
			ph.End()
		}
	}
	c.cstats.Attrs = len(src.names)
	c.cstats.Constraints = len(src.cons)
	c.cstats.UpperBoundCons = len(src.upper)
	c.cstats.TotalSize = c.totalSize
	c.cstats.SCCs = c.pr.Max
	c.cstats.Duration = time.Since(start)
	if sp != nil {
		sp.SetAttr("attrs", int64(c.cstats.Attrs))
		sp.SetAttr("constraints", int64(c.cstats.Constraints))
		sp.SetAttr("sccs", int64(c.cstats.SCCs))
		sp.SetAttr("total_size", int64(c.cstats.TotalSize))
		sp.End()
	}
	return c
}

// CompileStats returns the operation counts and wall time of the one-time
// compilation that produced this snapshot, including the §6 upper-bound
// fixpoint's work (the instrumentation behind DeriveUpperBounds).
func (c *Compiled) CompileStats() CompileStats { return c.cstats }

// WithSink returns a view of the snapshot carrying sink as its default
// event sink: every solve run against the view streams its solver events
// (assign / try / try-failed / lower / collapse / done) into sink unless
// the per-solve options install their own. The view shares all compiled
// data with c; since one view may serve many concurrent solves, the sink
// must be safe for concurrent use.
func (c *Compiled) WithSink(sink obs.EventSink) *Compiled {
	cc := *c
	cc.sink = sink
	return &cc
}

// EventSink returns the default event sink attached by WithSink, or nil.
func (c *Compiled) EventSink() obs.EventSink { return c.sink }

// Set returns a read-only view of the compiled constraints with the full
// Set query API (AttrName, Format, Violations, ...). The view is frozen:
// mutators return ErrFrozen.
func (c *Compiled) Set() *Set { return c.src }

// Lattice returns the security lattice the constraints are stated over.
func (c *Compiled) Lattice() lattice.Lattice { return c.src.lat }

// NumAttrs returns the number of attributes in the snapshot.
func (c *Compiled) NumAttrs() int { return len(c.src.names) }

// Constraints returns the lower-bound constraints. Callers must not modify
// the returned slice.
func (c *Compiled) Constraints() []Constraint { return c.src.cons }

// UpperBounds returns the §6 upper-bound constraints. Callers must not
// modify the returned slice.
func (c *Compiled) UpperBounds() []UpperBound { return c.src.upper }

// HasUpperBounds reports whether the snapshot carries §6 upper bounds.
func (c *Compiled) HasUpperBounds() bool { return len(c.src.upper) > 0 }

// Graph returns the precomputed attribute dependency graph. The graph is
// immutable and shared; callers must not add edges.
func (c *Compiled) Graph() *graph.Digraph { return c.g }

// Priorities returns the precomputed §4 priority structure. The result is
// immutable and shared across all solves of this snapshot.
func (c *Compiled) Priorities() *graph.PriorityResult { return c.pr }

// ConstraintsOn returns the precomputed Constr[A] adjacency (constraint
// indices with A on the left-hand side). Shared and immutable.
func (c *Compiled) ConstraintsOn() [][]int { return c.onLHS }

// ConstraintsInto returns the precomputed per-attribute indices of the
// constraints whose right-hand side is that attribute. Shared and immutable.
func (c *Compiled) ConstraintsInto() [][]int { return c.into }

// Acyclic reports whether the compiled constraint graph is a DAG.
func (c *Compiled) Acyclic() bool { return c.acyclic }

// TotalSize returns the paper's S = Σ(|lhs|+1) for the snapshot.
func (c *Compiled) TotalSize() int { return c.totalSize }

// UpperBoundFixpoint returns the §6 preprocessing result computed at
// compile time: the firm maximum level of every attribute and, when the
// bounds are inconsistent, human-readable conflict descriptions. Both
// return values are nil when the set has no upper bounds. The returned
// assignment is shared and must be treated as read-only.
func (c *Compiled) UpperBoundFixpoint() (Assignment, []string) { return c.ub, c.ubConflicts }

// upperBoundFixpoint performs the §6 preprocessing phase: every attribute
// starts at ⊤; explicit upper bounds are glb-merged onto their attributes
// and pushed forward through the constraint graph (a complex constraint
// propagates the lub of its left-hand side). An inconsistency is detected
// when the bound arriving at a level constant fails to dominate it. On
// success the returned assignment labels each attribute at its maximum
// allowed level, and that assignment satisfies every lower-bound
// constraint — the starting point for the modified BigLoop.
//
// The fixpoint is computed with a worklist over constraints; each
// attribute's bound strictly decreases on every update, so the pass
// terminates after at most H updates per attribute, O(S·H·c) in the worst
// case and O(S·c) when bounds settle in one pass as the paper assumes.
// Worklist pops and bound tightenings are counted into st when non-nil.
func upperBoundFixpoint(s *Set, st *CompileStats) (Assignment, []string) {
	lat := s.lat
	n := len(s.names)
	ub := make(Assignment, n)
	for i := range ub {
		ub[i] = lat.Top()
	}
	for _, u := range s.upper {
		ub[u.Attr] = lat.Glb(ub[u.Attr], u.Level)
	}

	cons := s.cons
	onLHS := s.ConstraintsOn()

	// Worklist of constraint indices whose lhs bound may have tightened.
	inQueue := make([]bool, len(cons))
	queue := make([]int, 0, len(cons))
	push := func(ci int) {
		if !inQueue[ci] {
			inQueue[ci] = true
			queue = append(queue, ci)
		}
	}
	for ci := range cons {
		push(ci)
	}

	var conflicts []string
	for len(queue) > 0 {
		ci := queue[0]
		queue = queue[1:]
		inQueue[ci] = false
		if st != nil {
			st.UBPops++
		}
		c := cons[ci]
		bound := lat.Bottom()
		for _, a := range c.LHS {
			bound = lat.Lub(bound, ub[a])
		}
		if c.RHS.IsLevel {
			if !lat.Dominates(bound, c.RHS.Level) {
				conflicts = append(conflicts, fmt.Sprintf(
					"upper bounds cap lub of lhs at %s, below required %s in %q",
					lat.FormatLevel(bound), lat.FormatLevel(c.RHS.Level), s.Format(c)))
			}
			continue
		}
		rhs := c.RHS.Attr
		merged := lat.Glb(ub[rhs], bound)
		if merged != ub[rhs] {
			ub[rhs] = merged
			if st != nil {
				st.UBTightenings++
			}
			for _, dep := range onLHS[rhs] {
				push(dep)
			}
		}
	}
	return ub, conflicts
}
