package constraint

import (
	"errors"
	"fmt"

	"minup/internal/graph"
	"minup/internal/lattice"
)

// ErrFrozen is returned by Set mutators (AddAttr, Add, AddUpper) after the
// set has been frozen by Compile. A frozen set is guaranteed to agree with
// every Compiled snapshot taken from it, so sharing the snapshot across
// goroutines is safe. Use errors.Is(err, ErrFrozen) to detect it.
var ErrFrozen = errors.New("constraint: set is frozen by Compile")

// Compiled is an immutable snapshot of a constraint Set: the attribute
// table, the constraint and upper-bound slices, the dependency digraph, its
// SCC condensation with the §4 priority numbering, the Constr[A] /
// into-constraint adjacency, and (when §6 upper bounds are present) the
// derived firm per-attribute bounds. All of this is the one-time "compile"
// cost of Theorem 5.2's complexity argument; a Compiled value is safe for
// concurrent use by any number of solver sessions.
//
// Obtain one with Set.Compile (which freezes the source set so it can never
// drift from the snapshot) or Set.Snapshot (which leaves the source
// mutable — later mutations are NOT reflected in the snapshot, and mutating
// the set concurrently with solves of the snapshot is a data race).
type Compiled struct {
	src         *Set // private frozen copy of the source set
	g           *graph.Digraph
	pr          *graph.PriorityResult
	onLHS       [][]int
	into        [][]int
	acyclic     bool
	totalSize   int
	ub          Assignment // §6 firm bounds; nil when the set has no upper bounds
	ubConflicts []string   // non-nil when the upper bounds are inconsistent
}

// Compile freezes the set and returns its immutable compiled form. After
// Compile, AddAttr/Add/AddUpper return ErrFrozen, so the snapshot can never
// silently go stale. Compile is idempotent; repeated calls recompute the
// snapshot (identical content) but freeze only once.
func (s *Set) Compile() *Compiled {
	s.frozen = true
	return s.snapshot()
}

// Snapshot returns an immutable compiled form without freezing the set.
// The snapshot reflects the set as of the call; constraints or bounds added
// afterwards are not visible to it. Intended for one-shot solves and for
// internal compatibility shims — callers that share a snapshot between
// goroutines while continuing to mutate the set get undefined behavior;
// use Compile for that.
func (s *Set) Snapshot() *Compiled { return s.snapshot() }

// Frozen reports whether the set has been frozen by Compile.
func (s *Set) Frozen() bool { return s.frozen }

func (s *Set) snapshot() *Compiled {
	// The copy shares the backing arrays: Set mutators only append (never
	// overwrite), so the elements visible through these slice headers are
	// immutable even if the source set later grows and reallocates.
	src := &Set{
		lat:    s.lat,
		names:  s.names,
		index:  s.index,
		cons:   s.cons,
		upper:  s.upper,
		frozen: true,
	}
	c := &Compiled{
		src:       src,
		g:         src.Graph(),
		onLHS:     src.ConstraintsOn(),
		into:      src.ConstraintsInto(),
		totalSize: src.TotalSize(),
	}
	c.pr = graph.PrioritySCC(c.g)
	c.acyclic = graph.IsAcyclic(c.g)
	if len(src.upper) > 0 {
		c.ub, c.ubConflicts = upperBoundFixpoint(src)
	}
	return c
}

// Set returns a read-only view of the compiled constraints with the full
// Set query API (AttrName, Format, Violations, ...). The view is frozen:
// mutators return ErrFrozen.
func (c *Compiled) Set() *Set { return c.src }

// Lattice returns the security lattice the constraints are stated over.
func (c *Compiled) Lattice() lattice.Lattice { return c.src.lat }

// NumAttrs returns the number of attributes in the snapshot.
func (c *Compiled) NumAttrs() int { return len(c.src.names) }

// Constraints returns the lower-bound constraints. Callers must not modify
// the returned slice.
func (c *Compiled) Constraints() []Constraint { return c.src.cons }

// UpperBounds returns the §6 upper-bound constraints. Callers must not
// modify the returned slice.
func (c *Compiled) UpperBounds() []UpperBound { return c.src.upper }

// HasUpperBounds reports whether the snapshot carries §6 upper bounds.
func (c *Compiled) HasUpperBounds() bool { return len(c.src.upper) > 0 }

// Graph returns the precomputed attribute dependency graph. The graph is
// immutable and shared; callers must not add edges.
func (c *Compiled) Graph() *graph.Digraph { return c.g }

// Priorities returns the precomputed §4 priority structure. The result is
// immutable and shared across all solves of this snapshot.
func (c *Compiled) Priorities() *graph.PriorityResult { return c.pr }

// ConstraintsOn returns the precomputed Constr[A] adjacency (constraint
// indices with A on the left-hand side). Shared and immutable.
func (c *Compiled) ConstraintsOn() [][]int { return c.onLHS }

// ConstraintsInto returns the precomputed per-attribute indices of the
// constraints whose right-hand side is that attribute. Shared and immutable.
func (c *Compiled) ConstraintsInto() [][]int { return c.into }

// Acyclic reports whether the compiled constraint graph is a DAG.
func (c *Compiled) Acyclic() bool { return c.acyclic }

// TotalSize returns the paper's S = Σ(|lhs|+1) for the snapshot.
func (c *Compiled) TotalSize() int { return c.totalSize }

// UpperBoundFixpoint returns the §6 preprocessing result computed at
// compile time: the firm maximum level of every attribute and, when the
// bounds are inconsistent, human-readable conflict descriptions. Both
// return values are nil when the set has no upper bounds. The returned
// assignment is shared and must be treated as read-only.
func (c *Compiled) UpperBoundFixpoint() (Assignment, []string) { return c.ub, c.ubConflicts }

// upperBoundFixpoint performs the §6 preprocessing phase: every attribute
// starts at ⊤; explicit upper bounds are glb-merged onto their attributes
// and pushed forward through the constraint graph (a complex constraint
// propagates the lub of its left-hand side). An inconsistency is detected
// when the bound arriving at a level constant fails to dominate it. On
// success the returned assignment labels each attribute at its maximum
// allowed level, and that assignment satisfies every lower-bound
// constraint — the starting point for the modified BigLoop.
//
// The fixpoint is computed with a worklist over constraints; each
// attribute's bound strictly decreases on every update, so the pass
// terminates after at most H updates per attribute, O(S·H·c) in the worst
// case and O(S·c) when bounds settle in one pass as the paper assumes.
func upperBoundFixpoint(s *Set) (Assignment, []string) {
	lat := s.lat
	n := len(s.names)
	ub := make(Assignment, n)
	for i := range ub {
		ub[i] = lat.Top()
	}
	for _, u := range s.upper {
		ub[u.Attr] = lat.Glb(ub[u.Attr], u.Level)
	}

	cons := s.cons
	onLHS := s.ConstraintsOn()

	// Worklist of constraint indices whose lhs bound may have tightened.
	inQueue := make([]bool, len(cons))
	queue := make([]int, 0, len(cons))
	push := func(ci int) {
		if !inQueue[ci] {
			inQueue[ci] = true
			queue = append(queue, ci)
		}
	}
	for ci := range cons {
		push(ci)
	}

	var conflicts []string
	for len(queue) > 0 {
		ci := queue[0]
		queue = queue[1:]
		inQueue[ci] = false
		c := cons[ci]
		bound := lat.Bottom()
		for _, a := range c.LHS {
			bound = lat.Lub(bound, ub[a])
		}
		if c.RHS.IsLevel {
			if !lat.Dominates(bound, c.RHS.Level) {
				conflicts = append(conflicts, fmt.Sprintf(
					"upper bounds cap lub of lhs at %s, below required %s in %q",
					lat.FormatLevel(bound), lat.FormatLevel(c.RHS.Level), s.Format(c)))
			}
			continue
		}
		rhs := c.RHS.Attr
		merged := lat.Glb(ub[rhs], bound)
		if merged != ub[rhs] {
			ub[rhs] = merged
			for _, dep := range onLHS[rhs] {
				push(dep)
			}
		}
	}
	return ub, conflicts
}
