package constraint

import (
	"errors"
	"testing"

	"minup/internal/lattice"
)

// Regression tests for the freeze semantics of Compile. Before the
// compile/solve split, callers could mutate a Set after deriving results
// from it and silently keep using stale graph/priority data; Compile now
// rejects mutation with ErrFrozen, and the non-freezing Snapshot documents
// that a snapshot never sees later mutation.

func compiledTestSet(t *testing.T) (*Set, lattice.Lattice) {
	t.Helper()
	lat := lattice.MustChain("c", "U", "C", "S", "TS")
	s := NewSet(lat)
	a, b := s.MustAttr("a"), s.MustAttr("b")
	lvl, err := lat.ParseLevel("S")
	if err != nil {
		t.Fatal(err)
	}
	s.MustAdd([]Attr{a}, LevelRHS(lvl))
	s.MustAdd([]Attr{b}, AttrRHS(a))
	return s, lat
}

func TestCompileFreezesSet(t *testing.T) {
	s, lat := compiledTestSet(t)
	if s.Frozen() {
		t.Fatal("set frozen before Compile")
	}
	c := s.Compile()
	if c == nil {
		t.Fatal("Compile returned nil")
	}
	if !s.Frozen() {
		t.Fatal("set not frozen after Compile")
	}

	a := s.MustAttr("a") // lookup of an existing attr stays allowed
	lvl, _ := lat.ParseLevel("C")

	if err := s.Add([]Attr{a}, LevelRHS(lvl)); !errors.Is(err, ErrFrozen) {
		t.Fatalf("Add after Compile: want ErrFrozen, got %v", err)
	}
	if err := s.AddUpper(a, lvl); !errors.Is(err, ErrFrozen) {
		t.Fatalf("AddUpper after Compile: want ErrFrozen, got %v", err)
	}
	if _, err := s.AddAttr("fresh"); !errors.Is(err, ErrFrozen) {
		t.Fatalf("AddAttr after Compile: want ErrFrozen, got %v", err)
	}

	// The rejected mutations must not have leaked into set or snapshot.
	if got := len(s.Constraints()); got != 2 {
		t.Fatalf("frozen set has %d constraints, want 2", got)
	}
	if got := s.NumAttrs(); got != 2 {
		t.Fatalf("frozen set has %d attrs, want 2", got)
	}
	if got := len(c.Constraints()); got != 2 {
		t.Fatalf("snapshot has %d constraints, want 2", got)
	}
}

func TestCompileIdempotentAttrLookupAllowed(t *testing.T) {
	s, _ := compiledTestSet(t)
	s.Compile()
	// AddAttr of an existing name is a pure lookup and must keep working
	// on a frozen set.
	a, err := s.AddAttr("a")
	if err != nil {
		t.Fatalf("AddAttr of existing name on frozen set: %v", err)
	}
	if name := s.AttrName(a); name != "a" {
		t.Fatalf("lookup returned %q", name)
	}
}

func TestSnapshotDoesNotFreeze(t *testing.T) {
	s, lat := compiledTestSet(t)
	snap := s.Snapshot()
	if s.Frozen() {
		t.Fatal("Snapshot froze the set")
	}

	// The set stays mutable...
	a := s.MustAttr("a")
	ts, _ := lat.ParseLevel("TS")
	if err := s.Add([]Attr{a}, LevelRHS(ts)); err != nil {
		t.Fatalf("Add after Snapshot: %v", err)
	}
	// ...and the snapshot is pinned at compile time: it must not see the
	// new constraint (this staleness is exactly why Compile freezes).
	if got := len(snap.Constraints()); got != 2 {
		t.Fatalf("snapshot grew to %d constraints after source mutation", got)
	}
	if got := len(s.Constraints()); got != 3 {
		t.Fatalf("source set has %d constraints, want 3", got)
	}

	// A fresh snapshot sees the addition.
	if got := len(s.Snapshot().Constraints()); got != 3 {
		t.Fatalf("fresh snapshot has %d constraints, want 3", got)
	}
}

func TestCompileCachesStructure(t *testing.T) {
	s, _ := compiledTestSet(t)
	c := s.Compile()
	if c.Graph() == nil || c.Priorities() == nil {
		t.Fatal("compiled snapshot missing graph or priorities")
	}
	if !c.Acyclic() {
		t.Fatal("acyclic instance reported cyclic")
	}
	if c.NumAttrs() != 2 {
		t.Fatalf("NumAttrs = %d, want 2", c.NumAttrs())
	}
	if c.TotalSize() != s.TotalSize() {
		t.Fatalf("TotalSize %d != set's %d", c.TotalSize(), s.TotalSize())
	}
	if c.HasUpperBounds() {
		t.Fatal("no upper bounds were added")
	}
	if on := c.ConstraintsOn(); len(on) != 2 {
		t.Fatalf("ConstraintsOn has %d rows, want 2", len(on))
	}
}

func TestCompileUpperBoundFixpointCached(t *testing.T) {
	lat := lattice.MustChain("c", "U", "C", "S", "TS")
	s := NewSet(lat)
	a, b := s.MustAttr("a"), s.MustAttr("b")
	cLvl, _ := lat.ParseLevel("C")
	sLvl, _ := lat.ParseLevel("S")
	s.MustAdd([]Attr{a}, AttrRHS(b))
	s.MustAddUpper(a, sLvl)
	s.MustAddUpper(b, cLvl)
	c := s.Compile()
	ub, conflicts := c.UpperBoundFixpoint()
	if conflicts != nil {
		t.Fatalf("unexpected conflicts: %v", conflicts)
	}
	if ub == nil {
		t.Fatal("no fixpoint cached for a set with upper bounds")
	}
	// a >= b with b capped at C tightens nothing on a (a's own cap S
	// stands), but b's firm bound must be C.
	if got := lat.FormatLevel(ub[b]); got != "C" {
		t.Fatalf("firm bound of b = %s, want C", got)
	}
}
