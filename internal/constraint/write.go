package constraint

import (
	"fmt"
	"io"
	"strings"

	"minup/internal/lattice"
)

// WriteTo serializes the constraint set in the textual format ParseInto
// accepts: an attrs declaration (preserving ids for attributes no
// constraint mentions), every lower-bound constraint, and every upper
// bound. A set round-trips through WriteTo/ParseInto into an equivalent
// set with identical attribute ids.
func (s *Set) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	if len(s.names) > 0 {
		b.WriteString("attrs")
		for _, n := range s.names {
			b.WriteString(" ")
			b.WriteString(n)
		}
		b.WriteString("\n")
	}
	for _, c := range s.cons {
		b.WriteString(s.Format(c))
		b.WriteString("\n")
	}
	for _, u := range s.upper {
		fmt.Fprintf(&b, "%s >= %s\n", s.lat.FormatLevel(u.Level), s.AttrName(u.Attr))
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// SetStats summarizes a constraint set's shape in the quantities the
// paper's complexity analysis uses.
type SetStats struct {
	Attrs       int
	Constraints int
	Simple      int
	Complex     int
	MaxLHS      int
	TotalSize   int // the paper's S
	UpperBounds int
	Acyclic     bool
	Components  int // strongly connected components of the graph
	LargestSCC  int
}

// Stats computes summary statistics for the set.
func (s *Set) Stats() SetStats {
	st := SetStats{
		Attrs:       s.NumAttrs(),
		Constraints: len(s.cons),
		TotalSize:   s.TotalSize(),
		UpperBounds: len(s.upper),
	}
	for _, c := range s.cons {
		if c.Simple() {
			st.Simple++
		} else {
			st.Complex++
		}
		if len(c.LHS) > st.MaxLHS {
			st.MaxLHS = len(c.LHS)
		}
	}
	pr := s.Priorities()
	st.Components = pr.Max
	for p := 1; p <= pr.Max; p++ {
		if len(pr.Sets[p]) > st.LargestSCC {
			st.LargestSCC = len(pr.Sets[p])
		}
	}
	st.Acyclic = st.LargestSCC <= 1 && s.Acyclic()
	return st
}

// String renders the stats on one line.
func (st SetStats) String() string {
	shape := "cyclic"
	if st.Acyclic {
		shape = "acyclic"
	}
	return fmt.Sprintf("%d attrs, %d constraints (%d simple, %d complex, max lhs %d), S=%d, %d upper bounds, %s, %d components (largest %d)",
		st.Attrs, st.Constraints, st.Simple, st.Complex, st.MaxLHS,
		st.TotalSize, st.UpperBounds, shape, st.Components, st.LargestSCC)
}

// DiffEntry records one attribute whose level differs between two
// assignments.
type DiffEntry struct {
	Attr     Attr
	From, To lattice.Level
	// Raised is true when To strictly dominates From; lowered moves have
	// both flags false; incomparable moves set Incomparable.
	Raised       bool
	Incomparable bool
}

// DiffAssignments reports the attributes whose levels changed from one
// assignment to another (e.g. before and after a policy change repaired
// with Repair), in attribute order.
func (s *Set) DiffAssignments(from, to Assignment) ([]DiffEntry, error) {
	if len(from) != s.NumAttrs() || len(to) != s.NumAttrs() {
		return nil, fmt.Errorf("constraint: diff needs two full assignments")
	}
	var out []DiffEntry
	for i := range from {
		if from[i] == to[i] {
			continue
		}
		e := DiffEntry{Attr: Attr(i), From: from[i], To: to[i]}
		switch {
		case s.lat.Dominates(to[i], from[i]):
			e.Raised = true
		case s.lat.Dominates(from[i], to[i]):
			// lowered
		default:
			e.Incomparable = true
		}
		out = append(out, e)
	}
	return out, nil
}

// FormatDiff renders a diff for humans, one line per change.
func (s *Set) FormatDiff(diff []DiffEntry) string {
	if len(diff) == 0 {
		return "no changes"
	}
	var b strings.Builder
	for i, e := range diff {
		if i > 0 {
			b.WriteString("\n")
		}
		arrow := "lowered to"
		if e.Raised {
			arrow = "raised to"
		} else if e.Incomparable {
			arrow = "moved (incomparably) to"
		}
		fmt.Fprintf(&b, "%s: %s %s %s", s.AttrName(e.Attr),
			s.lat.FormatLevel(e.From), arrow, s.lat.FormatLevel(e.To))
	}
	return b.String()
}
