package constraint

import (
	"testing"

	"minup/internal/lattice"
)

// FuzzParseString checks the constraint parser never panics and that any
// accepted input produces a structurally valid set (non-empty lhs, rhs
// levels inside the lattice, rhs attribute not on the lhs). Run the seeds
// under plain `go test`; run `go test -fuzz=FuzzParseString` to explore.
func FuzzParseString(f *testing.F) {
	for _, seed := range []string{
		"a >= S",
		"lub(a, b) >= TS",
		"a >= b\nb >= C",
		"S >= a",
		"attrs x y\nx >= y",
		"# comment\n\nlub(p,q,r) >= s",
		"lub( >= S",
		"a >= >=",
		"lub(a,b) >= lub(c,d)",
		">= \x00\x01",
		"a\t>=\tS",
	} {
		f.Add(seed)
	}
	lat := lattice.MustChain("mil", "U", "C", "S", "TS")
	f.Fuzz(func(t *testing.T, input string) {
		s := NewSet(lat)
		if err := s.ParseString(input); err != nil {
			return
		}
		for _, c := range s.Constraints() {
			if len(c.LHS) == 0 {
				t.Fatalf("accepted constraint with empty lhs from %q", input)
			}
			if c.RHS.IsLevel && !lat.Contains(c.RHS.Level) {
				t.Fatalf("accepted foreign level from %q", input)
			}
			if !c.RHS.IsLevel {
				for _, a := range c.LHS {
					if a == c.RHS.Attr {
						t.Fatalf("accepted trivial constraint from %q", input)
					}
				}
			}
		}
		for _, u := range s.UpperBounds() {
			if !lat.Contains(u.Level) || int(u.Attr) >= s.NumAttrs() {
				t.Fatalf("accepted invalid upper bound from %q", input)
			}
		}
	})
}
