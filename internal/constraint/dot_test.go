package constraint

import (
	"strings"
	"testing"
)

func TestWriteDOT(t *testing.T) {
	f := NewFigure2()
	var sb strings.Builder
	if err := f.Set.WriteDOT(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"digraph constraints",
		`"P" [shape=circle]`,
		`"level: L5" [shape=box`,
		`"B" -> "M"`, // simple constraint edge
		"cluster_",   // a hypernode for a complex constraint
		`"E" -> `,    // E participates in the {E,F} hypernode
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT missing %q", want)
		}
	}
	// Every attribute appears.
	for _, a := range f.Set.Attrs() {
		if !strings.Contains(out, `"`+f.Set.AttrName(a)+`"`) {
			t.Errorf("attribute %s missing from DOT", f.Set.AttrName(a))
		}
	}
	// Hypernode count matches the complex constraints.
	complexCount := 0
	for _, c := range f.Set.Constraints() {
		if !c.Simple() {
			complexCount++
		}
	}
	if got := strings.Count(out, "subgraph cluster_"); got != complexCount {
		t.Errorf("hypernodes = %d, want %d", got, complexCount)
	}
}

func TestWriteDOTUpperBounds(t *testing.T) {
	lat := chain4(t)
	s := NewSet(lat)
	a := s.MustAttr("a")
	top := lat.Top()
	s.MustAddUpper(a, top)
	var sb strings.Builder
	if err := s.WriteDOT(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `label="cap"`) {
		t.Error("upper-bound edge missing")
	}
}
