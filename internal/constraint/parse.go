package constraint

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// ParseInto reads constraints in a small line-oriented text format into the
// set. Blank lines and '#' comments are ignored. Each remaining line is
// either an attribute declaration
//
//	attrs name salary rank
//
// or a constraint of one of the forms
//
//	salary >= Secret              simple, level rhs
//	salary >= rank                simple, attribute rhs
//	lub(rank, dept) >= salary     complex (association / inference)
//	Secret >= salary              §6 upper bound (lhs is a level)
//
// Tokens that parse as levels of the set's lattice are levels; all other
// identifiers are attributes and are declared on first use.
func (s *Set) ParseInto(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "attrs "); ok {
			for _, name := range strings.Fields(rest) {
				if _, err := s.AddAttr(name); err != nil {
					return fmt.Errorf("line %d: %w", lineno, err)
				}
			}
			continue
		}
		if err := s.parseConstraintLine(line); err != nil {
			return fmt.Errorf("line %d: %w", lineno, err)
		}
	}
	return sc.Err()
}

// ParseString is ParseInto over an in-memory description.
func (s *Set) ParseString(text string) error {
	return s.ParseInto(strings.NewReader(text))
}

func (s *Set) parseConstraintLine(line string) error {
	lhsText, rhsText, ok := strings.Cut(line, ">=")
	if !ok {
		return fmt.Errorf("constraint %q missing '>='", line)
	}
	lhsText = strings.TrimSpace(lhsText)
	rhsText = strings.TrimSpace(rhsText)
	if lhsText == "" || rhsText == "" {
		return fmt.Errorf("constraint %q has an empty side", line)
	}

	rhs, err := s.parseOperand(rhsText)
	if err != nil {
		return err
	}

	// Complex lhs: lub(a, b, ...).
	if inner, found := cutLub(lhsText); found {
		var lhs []Attr
		for _, tok := range strings.Split(inner, ",") {
			tok = strings.TrimSpace(tok)
			if tok == "" {
				return fmt.Errorf("constraint %q has an empty lub member", line)
			}
			if _, err := s.lat.ParseLevel(tok); err == nil {
				return fmt.Errorf("constraint %q: level %q cannot appear inside lub(...) (levels belong on the right-hand side)", line, tok)
			}
			a, err := s.AddAttr(tok)
			if err != nil {
				return err
			}
			lhs = append(lhs, a)
		}
		return s.Add(lhs, rhs)
	}

	// Simple lhs: a single attribute, or a level (§6 upper bound).
	if lvl, err := s.lat.ParseLevel(lhsText); err == nil {
		if rhs.IsLevel {
			return fmt.Errorf("constraint %q relates two constants", line)
		}
		return s.AddUpper(rhs.Attr, lvl)
	}
	a, err := s.AddAttr(lhsText)
	if err != nil {
		return err
	}
	return s.Add([]Attr{a}, rhs)
}

// parseOperand interprets a token as a level of the lattice if possible,
// and as an attribute (declared on first use) otherwise.
func (s *Set) parseOperand(tok string) (RHS, error) {
	if lvl, err := s.lat.ParseLevel(tok); err == nil {
		return LevelRHS(lvl), nil
	}
	a, err := s.AddAttr(tok)
	if err != nil {
		return RHS{}, err
	}
	return AttrRHS(a), nil
}

// cutLub strips a "lub( ... )" wrapper, reporting whether one was present.
func cutLub(s string) (inner string, found bool) {
	t := strings.TrimSpace(s)
	if !strings.HasPrefix(t, "lub(") || !strings.HasSuffix(t, ")") {
		return "", false
	}
	return t[len("lub(") : len(t)-1], true
}
