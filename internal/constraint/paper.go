package constraint

import (
	"minup/internal/lattice"
)

// Figure2 bundles the paper's worked example: the constraint set of Figure
// 2(a) over the lattice of Figure 1(b), together with the final minimal
// classification reported in Figure 2(b).
type Figure2 struct {
	Lattice *lattice.Explicit
	Set     *Set
	// Attr ids for the eleven attributes, in the paper's processing order.
	P, B, C, E, F, G, M, I, O, N, D Attr
	// Want is the final classification of Figure 2(b)'s bottom row.
	Want Assignment
}

// NewFigure2 constructs the worked example. The constraint list combines
// the cyclic constraints spelled out in §2 — ({E,F},M), (M,G), ({D,G},C),
// (C,E), (C,F), ({F,I},B), (B,M), and the simple cycle (I,O), (O,N),
// (N,I) — with the acyclic constant constraints that the Figure 2(b) trace
// implies: (P,L1), (B,L5), (C,L4), (E,L1), (F,L2), (G,L1), (M,L3).
func NewFigure2() *Figure2 {
	lat := lattice.FigureOneB()
	s := NewSet(lat)
	f := &Figure2{Lattice: lat, Set: s}
	// Declare attributes in the paper's processing order so that priority
	// sets iterate B,C,E,F,G,M and I,O,N exactly as in Figure 2(b).
	f.P = s.MustAttr("P")
	f.B = s.MustAttr("B")
	f.C = s.MustAttr("C")
	f.E = s.MustAttr("E")
	f.F = s.MustAttr("F")
	f.G = s.MustAttr("G")
	f.M = s.MustAttr("M")
	f.I = s.MustAttr("I")
	f.O = s.MustAttr("O")
	f.N = s.MustAttr("N")
	f.D = s.MustAttr("D")

	lv := func(name string) lattice.Level {
		l, err := lat.ParseLevel(name)
		if err != nil {
			panic(err)
		}
		return l
	}

	// Cyclic constraints (§2's running enumeration).
	s.MustAdd([]Attr{f.E, f.F}, AttrRHS(f.M))
	s.MustAdd([]Attr{f.M}, AttrRHS(f.G))
	s.MustAdd([]Attr{f.D, f.G}, AttrRHS(f.C))
	s.MustAdd([]Attr{f.C}, AttrRHS(f.E))
	s.MustAdd([]Attr{f.C}, AttrRHS(f.F))
	s.MustAdd([]Attr{f.F, f.I}, AttrRHS(f.B))
	s.MustAdd([]Attr{f.B}, AttrRHS(f.M))
	// Simple cycle.
	s.MustAdd([]Attr{f.I}, AttrRHS(f.O))
	s.MustAdd([]Attr{f.O}, AttrRHS(f.N))
	s.MustAdd([]Attr{f.N}, AttrRHS(f.I))
	// Acyclic constant constraints implied by the trace.
	s.MustAdd([]Attr{f.P}, LevelRHS(lv("L1")))
	s.MustAdd([]Attr{f.B}, LevelRHS(lv("L5")))
	s.MustAdd([]Attr{f.C}, LevelRHS(lv("L4")))
	s.MustAdd([]Attr{f.E}, LevelRHS(lv("L1")))
	s.MustAdd([]Attr{f.F}, LevelRHS(lv("L2")))
	s.MustAdd([]Attr{f.G}, LevelRHS(lv("L1")))
	s.MustAdd([]Attr{f.M}, LevelRHS(lv("L3")))

	// Final classification from the bottom row of Figure 2(b).
	f.Want = make(Assignment, s.NumAttrs())
	for a, name := range map[Attr]string{
		f.P: "L1", f.B: "L5", f.C: "L4", f.E: "L1", f.F: "L4",
		f.G: "L1", f.M: "L3", f.I: "L5", f.O: "L5", f.N: "L5", f.D: "L4",
	} {
		f.Want[a] = lv(name)
	}
	return f
}
