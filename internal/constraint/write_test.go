package constraint

import (
	"strings"
	"testing"

	"minup/internal/lattice"
)

func TestWriteToRoundTrip(t *testing.T) {
	lat := chain4(t)
	s := NewSet(lat)
	// Include an attribute no constraint mentions to check id preservation.
	s.MustAttr("orphan")
	if err := s.ParseString(`
salary >= C
lub(name, salary) >= TS
bonus >= salary
S >= rank
`); err != nil {
		t.Fatal(err)
	}

	var sb strings.Builder
	if _, err := s.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	s2 := NewSet(lat)
	if err := s2.ParseString(sb.String()); err != nil {
		t.Fatalf("round trip parse: %v\ntext:\n%s", err, sb.String())
	}
	if s2.NumAttrs() != s.NumAttrs() {
		t.Fatalf("attrs %d != %d", s2.NumAttrs(), s.NumAttrs())
	}
	for _, a := range s.Attrs() {
		if s2.AttrName(a) != s.AttrName(a) {
			t.Fatalf("attribute id %d renamed: %q vs %q", a, s2.AttrName(a), s.AttrName(a))
		}
	}
	if len(s2.Constraints()) != len(s.Constraints()) || len(s2.UpperBounds()) != len(s.UpperBounds()) {
		t.Fatal("constraint counts differ after round trip")
	}
	for i, c := range s.Constraints() {
		if s2.Format(s2.Constraints()[i]) != s.Format(c) {
			t.Fatalf("constraint %d differs", i)
		}
	}
}

func TestStats(t *testing.T) {
	lat := chain4(t)
	s := NewSet(lat)
	a, b, c := s.MustAttr("a"), s.MustAttr("b"), s.MustAttr("c")
	s.MustAdd([]Attr{a}, AttrRHS(b))
	s.MustAdd([]Attr{b}, AttrRHS(a)) // cycle
	s.MustAdd([]Attr{a, b, c}, LevelRHS(lat.Top()))
	s.MustAddUpper(c, lat.Top())
	st := s.Stats()
	if st.Attrs != 3 || st.Constraints != 3 || st.Simple != 2 || st.Complex != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.MaxLHS != 3 || st.TotalSize != 2+2+4 || st.UpperBounds != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Acyclic || st.LargestSCC != 2 || st.Components != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if !strings.Contains(st.String(), "cyclic") || !strings.Contains(st.String(), "S=8") {
		t.Errorf("String() = %q", st.String())
	}

	s2 := NewSet(lat)
	x := s2.MustAttr("x")
	s2.MustAdd([]Attr{x}, LevelRHS(lat.Top()))
	if st2 := s2.Stats(); !st2.Acyclic {
		t.Errorf("acyclic set stats = %+v", st2)
	}
}

func TestDiffAssignments(t *testing.T) {
	lat := lattice.FigureOneB()
	s := NewSet(lat)
	s.MustAttr("a")
	s.MustAttr("b")
	s.MustAttr("c")
	lv := func(n string) lattice.Level { x, _ := lat.ParseLevel(n); return x }

	from := Assignment{lv("L1"), lv("L4"), lv("L2")}
	to := Assignment{lv("L3"), lv("L4"), lv("L3")} // a raised, b same, c incomparable
	diff, err := s.DiffAssignments(from, to)
	if err != nil {
		t.Fatal(err)
	}
	if len(diff) != 2 {
		t.Fatalf("diff = %+v", diff)
	}
	if !diff[0].Raised || diff[0].Incomparable {
		t.Errorf("a: %+v", diff[0])
	}
	if !diff[1].Incomparable {
		t.Errorf("c: %+v", diff[1])
	}
	out := s.FormatDiff(diff)
	if !strings.Contains(out, "a: L1 raised to L3") ||
		!strings.Contains(out, "c: L2 moved (incomparably) to L3") {
		t.Errorf("FormatDiff = %q", out)
	}
	if s.FormatDiff(nil) != "no changes" {
		t.Error("empty diff format")
	}
	if _, err := s.DiffAssignments(from[:1], to); err == nil {
		t.Error("short assignment accepted")
	}

	// A lowering.
	down := Assignment{lv("1"), lv("L4"), lv("L2")}
	diff, _ = s.DiffAssignments(from, down)
	if len(diff) != 1 || diff[0].Raised || diff[0].Incomparable {
		t.Fatalf("lowering diff = %+v", diff)
	}
	if !strings.Contains(s.FormatDiff(diff), "lowered to") {
		t.Error("lowering format")
	}
}
