// Package constraint implements the classification constraints of
// Definition 2.1 of the paper: expressions of the form
//
//	lub{λ(A1),…,λ(An)} ≽ X
//
// where the Ai are attributes and X is either a security level constant or
// another attribute λ(A). Constraints with a singleton left-hand side are
// "simple"; those with several attributes are "complex" and express
// association and inference requirements. Section 6's upper-bound
// constraints l ≽ λ(A), which guarantee visibility, are carried separately.
//
// A Set owns the attribute universe, the constraints, the §6 upper bounds,
// and the graph view used by Algorithm 3.1 (each constraint is an edge from
// its left-hand side — a hypernode when complex — to its right-hand side;
// the strongly connected components of that graph are the paper's priority
// sets).
package constraint

import (
	"fmt"
	"sort"
	"strings"

	"minup/internal/graph"
	"minup/internal/lattice"
)

// Attr is a dense attribute identifier within one Set.
type Attr int

// RHS is the right-hand side of a constraint: either a level constant or an
// attribute.
type RHS struct {
	IsLevel bool
	Level   lattice.Level // valid when IsLevel
	Attr    Attr          // valid when !IsLevel
}

// LevelRHS returns an RHS holding a level constant.
func LevelRHS(l lattice.Level) RHS { return RHS{IsLevel: true, Level: l} }

// AttrRHS returns an RHS holding an attribute.
func AttrRHS(a Attr) RHS { return RHS{Attr: a} }

// Constraint is one lower-bound classification constraint of Definition
// 2.1: lub of the LHS attributes must dominate the RHS. LHS is non-empty,
// duplicate-free, and (when RHS is an attribute) does not contain the RHS,
// per the paper's disjointness assumption.
type Constraint struct {
	LHS []Attr
	RHS RHS
}

// Simple reports whether the constraint has a singleton left-hand side.
func (c Constraint) Simple() bool { return len(c.LHS) == 1 }

// UpperBound is a §6 visibility constraint l ≽ λ(A): attribute A may be
// classified no higher than level l.
type UpperBound struct {
	Attr  Attr
	Level lattice.Level
}

// Set is a classification-constraint instance: an attribute universe over a
// security lattice, lower-bound constraints, and optional upper bounds.
// The zero value is not usable; construct with NewSet. A Set is not safe
// for concurrent mutation; once fully built it may be shared read-only.
// Compile freezes the set (mutators return ErrFrozen) and yields an
// immutable Compiled snapshot safe for concurrent solving.
type Set struct {
	lat    lattice.Lattice
	names  []string
	index  map[string]Attr
	cons   []Constraint
	upper  []UpperBound
	frozen bool
}

// NewSet returns an empty constraint set over the given lattice.
func NewSet(lat lattice.Lattice) *Set {
	return &Set{lat: lat, index: make(map[string]Attr)}
}

// Lattice returns the security lattice the constraints are stated over.
func (s *Set) Lattice() lattice.Lattice { return s.lat }

// Clone returns a deep, unfrozen copy of the set over the same (immutable)
// lattice. Mutating the clone never affects the original, which makes it
// the staging area for speculative mutations: the policy catalog parses
// appended constraint text into a clone and swaps it in only after the
// parse and the incremental repair both succeed.
func (s *Set) Clone() *Set {
	c := &Set{
		lat:   s.lat,
		names: append([]string(nil), s.names...),
		index: make(map[string]Attr, len(s.index)),
		cons:  make([]Constraint, len(s.cons)),
		upper: append([]UpperBound(nil), s.upper...),
	}
	for name, a := range s.index {
		c.index[name] = a
	}
	for i, cn := range s.cons {
		c.cons[i] = Constraint{LHS: append([]Attr(nil), cn.LHS...), RHS: cn.RHS}
	}
	return c
}

// NumAttrs returns the number of declared attributes.
func (s *Set) NumAttrs() int { return len(s.names) }

// Constraints returns the lower-bound constraints in insertion order. The
// caller must not modify the returned slice.
func (s *Set) Constraints() []Constraint { return s.cons }

// UpperBounds returns the §6 upper-bound constraints in insertion order.
// The caller must not modify the returned slice.
func (s *Set) UpperBounds() []UpperBound { return s.upper }

// AddAttr declares an attribute and returns its id; re-declaring an
// existing name returns the existing id. Attribute names must be non-empty,
// must not contain constraint syntax characters, and must not collide with
// a parsable level name of the lattice (so constraint text is unambiguous).
func (s *Set) AddAttr(name string) (Attr, error) {
	if a, ok := s.index[name]; ok {
		return a, nil
	}
	if s.frozen {
		return 0, fmt.Errorf("%w: cannot declare attribute %q", ErrFrozen, name)
	}
	if name == "" {
		return 0, fmt.Errorf("constraint: empty attribute name")
	}
	if strings.ContainsAny(name, "(), \t") {
		return 0, fmt.Errorf("constraint: attribute name %q contains reserved characters", name)
	}
	if _, err := s.lat.ParseLevel(name); err == nil {
		return 0, fmt.Errorf("constraint: attribute name %q collides with a level of lattice %q", name, s.lat.Name())
	}
	a := Attr(len(s.names))
	s.names = append(s.names, name)
	s.index[name] = a
	return a, nil
}

// MustAttr is AddAttr that panics on error, for static fixtures.
func (s *Set) MustAttr(name string) Attr {
	a, err := s.AddAttr(name)
	if err != nil {
		panic(err)
	}
	return a
}

// AttrByName looks up a declared attribute.
func (s *Set) AttrByName(name string) (Attr, bool) {
	a, ok := s.index[name]
	return a, ok
}

// AttrName returns the name of an attribute id.
func (s *Set) AttrName(a Attr) string {
	s.checkAttr(a)
	return s.names[a]
}

// Attrs returns all attribute ids in declaration order.
func (s *Set) Attrs() []Attr {
	out := make([]Attr, len(s.names))
	for i := range out {
		out[i] = Attr(i)
	}
	return out
}

func (s *Set) checkAttr(a Attr) {
	if a < 0 || int(a) >= len(s.names) {
		panic(fmt.Sprintf("constraint: attribute id %d out of range", a))
	}
}

// Add appends a lower-bound constraint. The left-hand side is deduplicated;
// per the paper's standing assumption a constraint whose right-hand side
// attribute also appears on the left is trivially satisfied and therefore
// rejected here (use AddIgnoreTrivial to drop such constraints silently).
func (s *Set) Add(lhs []Attr, rhs RHS) error {
	if s.frozen {
		return fmt.Errorf("%w: cannot add constraint", ErrFrozen)
	}
	if len(lhs) == 0 {
		return fmt.Errorf("constraint: empty left-hand side")
	}
	seen := make(map[Attr]bool, len(lhs))
	clean := make([]Attr, 0, len(lhs))
	for _, a := range lhs {
		s.checkAttr(a)
		if !seen[a] {
			seen[a] = true
			clean = append(clean, a)
		}
	}
	if rhs.IsLevel {
		if !s.lat.Contains(rhs.Level) {
			return fmt.Errorf("constraint: rhs level not in lattice %q", s.lat.Name())
		}
	} else {
		s.checkAttr(rhs.Attr)
		if seen[rhs.Attr] {
			return fmt.Errorf("constraint: rhs attribute %q also on lhs (trivially satisfied)", s.AttrName(rhs.Attr))
		}
	}
	s.cons = append(s.cons, Constraint{LHS: clean, RHS: rhs})
	return nil
}

// AddIgnoreTrivial is Add, except that constraints whose right-hand side
// appears on the left-hand side are silently dropped (reported as false)
// rather than rejected. Auto-generated constraint sets (e.g. from database
// dependencies) use this.
func (s *Set) AddIgnoreTrivial(lhs []Attr, rhs RHS) (added bool, err error) {
	if !rhs.IsLevel {
		for _, a := range lhs {
			if a == rhs.Attr {
				return false, nil
			}
		}
	}
	if err := s.Add(lhs, rhs); err != nil {
		return false, err
	}
	return true, nil
}

// MustAdd is Add that panics on error, for static fixtures.
func (s *Set) MustAdd(lhs []Attr, rhs RHS) {
	if err := s.Add(lhs, rhs); err != nil {
		panic(err)
	}
}

// AddUpper appends a §6 upper-bound constraint l ≽ λ(A).
func (s *Set) AddUpper(a Attr, l lattice.Level) error {
	if s.frozen {
		return fmt.Errorf("%w: cannot add upper bound", ErrFrozen)
	}
	s.checkAttr(a)
	if !s.lat.Contains(l) {
		return fmt.Errorf("constraint: upper-bound level not in lattice %q", s.lat.Name())
	}
	s.upper = append(s.upper, UpperBound{Attr: a, Level: l})
	return nil
}

// MustAddUpper is AddUpper that panics on error.
func (s *Set) MustAddUpper(a Attr, l lattice.Level) {
	if err := s.AddUpper(a, l); err != nil {
		panic(err)
	}
}

// TotalSize returns the paper's S = Σ(|lhs|+1) over the lower-bound
// constraints: the total size of the constraint set that the complexity
// bounds of Theorem 5.2 are stated in.
func (s *Set) TotalSize() int {
	sum := 0
	for _, c := range s.cons {
		sum += len(c.LHS) + 1
	}
	return sum
}

// Format renders a constraint in the textual form accepted by ParseInto.
func (s *Set) Format(c Constraint) string {
	var b strings.Builder
	if len(c.LHS) == 1 {
		b.WriteString(s.AttrName(c.LHS[0]))
	} else {
		b.WriteString("lub(")
		for i, a := range c.LHS {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(s.AttrName(a))
		}
		b.WriteString(")")
	}
	b.WriteString(" >= ")
	if c.RHS.IsLevel {
		b.WriteString(s.lat.FormatLevel(c.RHS.Level))
	} else {
		b.WriteString(s.AttrName(c.RHS.Attr))
	}
	return b.String()
}

// Graph returns the attribute dependency graph of the constraint set: one
// node per attribute, and for every constraint with an attribute right-hand
// side an edge from each left-hand-side attribute to it (the paper's
// convention that the rhs is reachable from every lhs member of a
// hypernode). Level constants are omitted — they are always "done" and
// never affect strong connectivity.
func (s *Set) Graph() *graph.Digraph {
	g := graph.New(len(s.names))
	for _, c := range s.cons {
		if c.RHS.IsLevel {
			continue
		}
		for _, a := range c.LHS {
			g.AddEdge(int(a), int(c.RHS.Attr))
		}
	}
	return g
}

// Priorities computes the paper's §4 priority structure: SCCs of Graph()
// numbered so that every attribute's priority is no greater than that of
// the attributes reachable from it. BigLoop consumes priority sets in
// decreasing order.
func (s *Set) Priorities() *graph.PriorityResult {
	return graph.PrioritySCC(s.Graph())
}

// Acyclic reports whether the constraint set is acyclic in the sense of §2
// (its graph representation is a DAG).
func (s *Set) Acyclic() bool {
	return graph.IsAcyclic(s.Graph())
}

// ConstraintsOn returns, for every attribute, the indices (into
// Constraints()) of the constraints whose left-hand side contains it — the
// paper's Constr[A].
func (s *Set) ConstraintsOn() [][]int {
	out := make([][]int, len(s.names))
	for i, c := range s.cons {
		for _, a := range c.LHS {
			out[a] = append(out[a], i)
		}
	}
	return out
}

// ConstraintsInto returns, for every attribute, the indices of the
// constraints whose right-hand side is that attribute.
func (s *Set) ConstraintsInto() [][]int {
	out := make([][]int, len(s.names))
	for i, c := range s.cons {
		if !c.RHS.IsLevel {
			out[c.RHS.Attr] = append(out[c.RHS.Attr], i)
		}
	}
	return out
}

// Assignment maps each attribute (by id) to a level. It is the λ of the
// paper.
type Assignment []lattice.Level

// Clone returns a copy of the assignment.
func (m Assignment) Clone() Assignment { return append(Assignment(nil), m...) }

// Dominates reports pointwise dominance m ≽ o (the extension of ≽ to
// mappings from §2).
func (m Assignment) Dominates(lat lattice.Lattice, o Assignment) bool {
	if len(m) != len(o) {
		return false
	}
	for i := range m {
		if !lat.Dominates(m[i], o[i]) {
			return false
		}
	}
	return true
}

// Equal reports whether two assignments are identical.
func (m Assignment) Equal(o Assignment) bool {
	if len(m) != len(o) {
		return false
	}
	for i := range m {
		if m[i] != o[i] {
			return false
		}
	}
	return true
}

// LubLHS returns lub{λ(A) : A ∈ lhs} under the assignment.
func (s *Set) LubLHS(m Assignment, lhs []Attr) lattice.Level {
	acc := s.lat.Bottom()
	for _, a := range lhs {
		acc = s.lat.Lub(acc, m[a])
	}
	return acc
}

// RHSLevel returns the level of a constraint's right-hand side under the
// assignment.
func (s *Set) RHSLevel(m Assignment, r RHS) lattice.Level {
	if r.IsLevel {
		return r.Level
	}
	return m[r.Attr]
}

// SatisfiedBy reports whether one constraint holds under the assignment.
func (s *Set) SatisfiedBy(m Assignment, c Constraint) bool {
	return s.lat.Dominates(s.LubLHS(m, c.LHS), s.RHSLevel(m, c.RHS))
}

// Satisfies reports whether λ |= C: every lower-bound constraint and every
// upper bound holds under the assignment.
func (s *Set) Satisfies(m Assignment) bool {
	return s.Violations(m) == nil
}

// Violations returns the constraints (formatted) violated by the
// assignment, or nil if it satisfies the set. Intended for error reporting
// and tests.
func (s *Set) Violations(m Assignment) []string {
	if len(m) != len(s.names) {
		return []string{fmt.Sprintf("assignment covers %d of %d attributes", len(m), len(s.names))}
	}
	var out []string
	for _, c := range s.cons {
		if !s.SatisfiedBy(m, c) {
			out = append(out, s.Format(c))
		}
	}
	for _, u := range s.upper {
		if !s.lat.Dominates(u.Level, m[u.Attr]) {
			out = append(out, fmt.Sprintf("%s >= %s (upper bound)", s.lat.FormatLevel(u.Level), s.AttrName(u.Attr)))
		}
	}
	return out
}

// FormatAssignment renders an assignment as "attr=level" pairs in
// attribute-name order.
func (s *Set) FormatAssignment(m Assignment) string {
	type pair struct{ name, level string }
	pairs := make([]pair, len(m))
	for i, l := range m {
		pairs[i] = pair{s.names[i], s.lat.FormatLevel(l)}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].name < pairs[j].name })
	parts := make([]string, len(pairs))
	for i, p := range pairs {
		parts[i] = p.name + "=" + p.level
	}
	return strings.Join(parts, " ")
}
