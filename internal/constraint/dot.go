package constraint

import (
	"fmt"
	"io"
	"strings"
)

// WriteDOT renders the constraint graph in Graphviz DOT format following
// the paper's Figure 2(a) conventions: attributes as circles, level
// constants as boxes, and complex constraints as dashed hypernode
// clusters with a single outgoing edge. The output is deterministic.
func (s *Set) WriteDOT(w io.Writer) error {
	var b strings.Builder
	b.WriteString("digraph constraints {\n")
	b.WriteString("  rankdir=LR;\n")
	b.WriteString("  node [fontname=\"Helvetica\"];\n")

	for _, a := range s.Attrs() {
		fmt.Fprintf(&b, "  %q [shape=circle];\n", s.AttrName(a))
	}
	// Level constants referenced by constraints, deduplicated.
	levelNode := func(l string) string { return "level: " + l }
	seenLevels := map[string]bool{}
	for _, c := range s.cons {
		if c.RHS.IsLevel {
			name := s.lat.FormatLevel(c.RHS.Level)
			if !seenLevels[name] {
				seenLevels[name] = true
				fmt.Fprintf(&b, "  %q [shape=box, label=%q];\n", levelNode(name), name)
			}
		}
	}
	for _, u := range s.upper {
		name := s.lat.FormatLevel(u.Level)
		if !seenLevels[name] {
			seenLevels[name] = true
			fmt.Fprintf(&b, "  %q [shape=box, label=%q];\n", levelNode(name), name)
		}
	}

	rhsName := func(r RHS) string {
		if r.IsLevel {
			return levelNode(s.lat.FormatLevel(r.Level))
		}
		return s.AttrName(r.Attr)
	}
	for i, c := range s.cons {
		if c.Simple() {
			fmt.Fprintf(&b, "  %q -> %q;\n", s.AttrName(c.LHS[0]), rhsName(c.RHS))
			continue
		}
		// Hypernode: a dashed cluster anchored by a point node.
		anchor := fmt.Sprintf("hyper%d", i)
		fmt.Fprintf(&b, "  subgraph cluster_%d {\n    style=dashed;\n", i)
		fmt.Fprintf(&b, "    %q [shape=point, label=\"\"];\n", anchor)
		b.WriteString("  }\n")
		for _, a := range c.LHS {
			fmt.Fprintf(&b, "  %q -> %q [style=dashed, arrowhead=none];\n", s.AttrName(a), anchor)
		}
		fmt.Fprintf(&b, "  %q -> %q;\n", anchor, rhsName(c.RHS))
	}
	for _, u := range s.upper {
		fmt.Fprintf(&b, "  %q -> %q [style=dotted, label=\"cap\"];\n",
			levelNode(s.lat.FormatLevel(u.Level)), s.AttrName(u.Attr))
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
