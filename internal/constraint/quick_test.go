package constraint

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"minup/internal/lattice"
)

// TestParseNeverPanics feeds random byte soup and random mutations of
// valid constraint text to the parser: it must return an error or succeed,
// never panic.
func TestParseNeverPanics(t *testing.T) {
	lat := lattice.MustChain("mil", "U", "C", "S", "TS")
	alphabet := []rune("abxyz >=lub(),#\n\tUSC")
	f := func(seed int64) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("panic on seed %d: %v", seed, r)
				ok = false
			}
		}()
		rng := rand.New(rand.NewSource(seed))
		var b strings.Builder
		for i := 0; i < 3+rng.Intn(200); i++ {
			b.WriteRune(alphabet[rng.Intn(len(alphabet))])
		}
		s := NewSet(lat)
		_ = s.ParseString(b.String()) // error or nil, both fine
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestFormatParseRoundTrip property-tests that Format output re-parses to
// an equivalent constraint on randomly generated sets.
func TestFormatParseRoundTrip(t *testing.T) {
	lats := []lattice.Lattice{
		lattice.MustChain("mil", "U", "C", "S", "TS"),
		lattice.FigureOneA(),
		lattice.MustPowerset("p", "x", "y", "z"),
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		lat := lats[rng.Intn(len(lats))]
		s := NewSet(lat)
		attrs := make([]Attr, 5)
		for i := range attrs {
			attrs[i] = s.MustAttr(string(rune('p' + i)))
		}
		for i := 0; i < 6; i++ {
			width := 1 + rng.Intn(3)
			perm := rng.Perm(len(attrs))
			lhs := make([]Attr, width)
			for j := range lhs {
				lhs[j] = attrs[perm[j]]
			}
			var rhs RHS
			if rng.Intn(2) == 0 {
				rhs = AttrRHS(attrs[perm[width]])
			} else {
				if en, ok := lat.(lattice.Enumerable); ok {
					el := en.Elements()
					rhs = LevelRHS(el[rng.Intn(len(el))])
				} else {
					rhs = LevelRHS(lat.Top())
				}
			}
			if err := s.Add(lhs, rhs); err != nil {
				return false
			}
		}
		// Round-trip every constraint through its textual form.
		s2 := NewSet(lat)
		for i := range attrs {
			s2.MustAttr(string(rune('p' + i)))
		}
		for _, c := range s.Constraints() {
			if err := s2.ParseString(s.Format(c)); err != nil {
				t.Logf("seed %d: reparse of %q failed: %v", seed, s.Format(c), err)
				return false
			}
		}
		if len(s2.Constraints()) != len(s.Constraints()) {
			return false
		}
		for i, c := range s.Constraints() {
			if s.Format(c) != s2.Format(s2.Constraints()[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestSatisfiesMonotone property-tests a core invariant of Definition
// 2.1 constraints: raising any attribute of a satisfying assignment that
// appears only on left-hand sides keeps it satisfying, and the all-top
// assignment always satisfies (the consistency argument of §3).
func TestSatisfiesMonotone(t *testing.T) {
	lat := lattice.FigureOneB()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewSet(lat)
		attrs := make([]Attr, 6)
		for i := range attrs {
			attrs[i] = s.MustAttr(string(rune('p' + i)))
		}
		elems := lat.Elements()
		for i := 0; i < 8; i++ {
			width := 1 + rng.Intn(3)
			perm := rng.Perm(len(attrs))
			lhs := make([]Attr, width)
			for j := range lhs {
				lhs[j] = attrs[perm[j]]
			}
			s.MustAdd(lhs, LevelRHS(elems[rng.Intn(len(elems))]))
		}
		// All-top satisfies.
		top := make(Assignment, len(attrs))
		for i := range top {
			top[i] = lat.Top()
		}
		if !s.Satisfies(top) {
			return false
		}
		// Find any satisfying assignment by random sampling, then raise a
		// random attribute: still satisfying (all rhs are constants here).
		m := make(Assignment, len(attrs))
		for tries := 0; tries < 50; tries++ {
			for i := range m {
				m[i] = elems[rng.Intn(len(elems))]
			}
			if s.Satisfies(m) {
				a := rng.Intn(len(m))
				up := lat.CoveredBy(m[a])
				if len(up) > 0 {
					m[a] = up[rng.Intn(len(up))]
					if !s.Satisfies(m) {
						return false
					}
				}
				break
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
