package constraint

import (
	"reflect"
	"strings"
	"testing"

	"minup/internal/lattice"
)

func chain4(t *testing.T) *lattice.Chain {
	t.Helper()
	return lattice.MustChain("mil", "U", "C", "S", "TS")
}

func lv(t *testing.T, l lattice.Lattice, name string) lattice.Level {
	t.Helper()
	x, err := l.ParseLevel(name)
	if err != nil {
		t.Fatalf("ParseLevel(%s): %v", name, err)
	}
	return x
}

func TestAddAttr(t *testing.T) {
	s := NewSet(chain4(t))
	a, err := s.AddAttr("name")
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.AddAttr("name")
	if err != nil || a != b {
		t.Errorf("re-declaration: %v %v %v", a, b, err)
	}
	if s.NumAttrs() != 1 {
		t.Errorf("NumAttrs = %d", s.NumAttrs())
	}
	if got := s.AttrName(a); got != "name" {
		t.Errorf("AttrName = %q", got)
	}
	for _, bad := range []string{"", "a b", "x(y)", "S" /* level name */} {
		if _, err := s.AddAttr(bad); err == nil {
			t.Errorf("AddAttr(%q) accepted", bad)
		}
	}
}

func TestAddValidation(t *testing.T) {
	s := NewSet(chain4(t))
	a := s.MustAttr("a")
	b := s.MustAttr("b")
	if err := s.Add(nil, AttrRHS(b)); err == nil {
		t.Error("empty lhs accepted")
	}
	if err := s.Add([]Attr{a, b}, AttrRHS(b)); err == nil {
		t.Error("rhs on lhs accepted")
	}
	added, err := s.AddIgnoreTrivial([]Attr{a, b}, AttrRHS(b))
	if added || err != nil {
		t.Errorf("AddIgnoreTrivial trivial case: %v %v", added, err)
	}
	added, err = s.AddIgnoreTrivial([]Attr{a}, AttrRHS(b))
	if !added || err != nil {
		t.Errorf("AddIgnoreTrivial real case: %v %v", added, err)
	}
	// Duplicate lhs members collapse.
	s.MustAdd([]Attr{a, a, b}, LevelRHS(s.Lattice().Top()))
	last := s.Constraints()[len(s.Constraints())-1]
	if len(last.LHS) != 2 {
		t.Errorf("lhs not deduped: %v", last.LHS)
	}
}

func TestTotalSize(t *testing.T) {
	s := NewSet(chain4(t))
	a, b, c := s.MustAttr("a"), s.MustAttr("b"), s.MustAttr("c")
	s.MustAdd([]Attr{a}, AttrRHS(b))                        // size 2
	s.MustAdd([]Attr{a, b, c}, LevelRHS(s.Lattice().Top())) // size 4
	if got := s.TotalSize(); got != 2+4 {
		t.Errorf("TotalSize = %d, want 6", got)
	}
}

func TestSatisfiesAndViolations(t *testing.T) {
	l := chain4(t)
	s := NewSet(l)
	a, b := s.MustAttr("a"), s.MustAttr("b")
	s.MustAdd([]Attr{a}, LevelRHS(lv(t, l, "S")))
	s.MustAdd([]Attr{a, b}, LevelRHS(lv(t, l, "TS")))
	s.MustAdd([]Attr{b}, AttrRHS(a))
	s.MustAddUpper(b, lv(t, l, "TS"))

	good := Assignment{lv(t, l, "S"), lv(t, l, "TS")}
	if !s.Satisfies(good) {
		t.Fatalf("good assignment rejected: %v", s.Violations(good))
	}
	bad := Assignment{lv(t, l, "C"), lv(t, l, "U")}
	v := s.Violations(bad)
	if len(v) != 3 {
		t.Errorf("violations = %v, want 3", v)
	}
	short := Assignment{lv(t, l, "S")}
	if s.Satisfies(short) {
		t.Error("short assignment accepted")
	}

	// Upper-bound violation alone.
	s2 := NewSet(l)
	x := s2.MustAttr("x")
	s2.MustAddUpper(x, lv(t, l, "C"))
	if s2.Satisfies(Assignment{lv(t, l, "TS")}) {
		t.Error("upper bound not enforced")
	}
	if !s2.Satisfies(Assignment{lv(t, l, "U")}) {
		t.Error("assignment below upper bound rejected")
	}
}

func TestAssignmentOps(t *testing.T) {
	l := chain4(t)
	m := Assignment{lv(t, l, "S"), lv(t, l, "C")}
	o := Assignment{lv(t, l, "C"), lv(t, l, "C")}
	if !m.Dominates(l, o) || o.Dominates(l, m) {
		t.Error("pointwise dominance wrong")
	}
	if !m.Equal(m.Clone()) || m.Equal(o) {
		t.Error("Equal wrong")
	}
	if m.Dominates(l, Assignment{lv(t, l, "U")}) {
		t.Error("length mismatch must not dominate")
	}
}

func TestGraphAndPriorities(t *testing.T) {
	l := chain4(t)
	s := NewSet(l)
	a, b, c, d := s.MustAttr("a"), s.MustAttr("b"), s.MustAttr("c"), s.MustAttr("d")
	s.MustAdd([]Attr{a}, AttrRHS(b))
	s.MustAdd([]Attr{b}, AttrRHS(a)) // cycle a<->b
	s.MustAdd([]Attr{c, d}, AttrRHS(a))
	s.MustAdd([]Attr{d}, LevelRHS(l.Top()))

	if s.Acyclic() {
		t.Error("cyclic set reported acyclic")
	}
	pr := s.Priorities()
	if pr.Priority[a] != pr.Priority[b] {
		t.Error("a and b must share a priority")
	}
	if pr.Priority[c] >= pr.Priority[a] || pr.Priority[d] >= pr.Priority[a] {
		t.Error("c,d reach a, so must have lower priority")
	}

	on := s.ConstraintsOn()
	if !reflect.DeepEqual(on[d], []int{2, 3}) {
		t.Errorf("ConstraintsOn[d] = %v", on[d])
	}
	into := s.ConstraintsInto()
	if !reflect.DeepEqual(into[a], []int{1, 2}) {
		t.Errorf("ConstraintsInto[a] = %v", into[a])
	}

	s2 := NewSet(l)
	x, y := s2.MustAttr("x"), s2.MustAttr("y")
	s2.MustAdd([]Attr{x}, AttrRHS(y))
	if !s2.Acyclic() {
		t.Error("acyclic set reported cyclic")
	}
}

func TestParse(t *testing.T) {
	l := chain4(t)
	s := NewSet(l)
	err := s.ParseString(`
# payroll policy
attrs name salary
salary >= S
lub(name, salary) >= TS
salary >= rank
TS >= rank
`)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumAttrs() != 3 {
		t.Errorf("attrs = %d, want 3 (rank auto-declared)", s.NumAttrs())
	}
	if len(s.Constraints()) != 3 || len(s.UpperBounds()) != 1 {
		t.Errorf("parsed %d constraints, %d uppers", len(s.Constraints()), len(s.UpperBounds()))
	}
	c := s.Constraints()[1]
	if len(c.LHS) != 2 || !c.RHS.IsLevel || c.RHS.Level != l.Top() {
		t.Errorf("complex constraint parsed wrong: %+v", c)
	}

	// Round-trip through Format.
	for _, c := range s.Constraints() {
		text := s.Format(c)
		s2 := NewSet(l)
		if err := s2.ParseString(text); err != nil {
			t.Errorf("Format produced unparsable %q: %v", text, err)
		}
	}

	for _, bad := range []string{
		"a >",
		"a >= ",
		">= a",
		"S >= TS",         // two constants
		"lub(S, a) >= TS", // level inside lub
		"lub(, a) >= TS",
		"lub(a, b) >= b", // trivially satisfied: rejected
		"a b >= S",       // bad attr name
	} {
		s3 := NewSet(l)
		if err := s3.ParseString(bad); err == nil {
			t.Errorf("ParseString(%q) accepted", bad)
		}
	}
}

func TestParseMLSLevels(t *testing.T) {
	m := lattice.FigureOneA()
	s := NewSet(m)
	err := s.ParseString(`
mission >= <TS,{Army}>
lub(mission, roster) >= <TS,{Army,Nuclear}>
<TS,{Army}> >= roster
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Constraints()) != 2 || len(s.UpperBounds()) != 1 {
		t.Fatalf("parsed %d constraints %d uppers", len(s.Constraints()), len(s.UpperBounds()))
	}
	if s.Constraints()[0].RHS.Level != m.MustLevel("TS", "Army") {
		t.Error("MLS level literal parsed wrong")
	}
}

func TestFigure2Fixture(t *testing.T) {
	f := NewFigure2()
	s := f.Set
	if s.NumAttrs() != 11 {
		t.Fatalf("attrs = %d", s.NumAttrs())
	}
	if len(s.Constraints()) != 17 {
		t.Fatalf("constraints = %d, want 17", len(s.Constraints()))
	}
	if s.Acyclic() {
		t.Error("figure 2 set must be cyclic")
	}
	// The paper's final classification satisfies the set.
	if !s.Satisfies(f.Want) {
		t.Fatalf("paper's final classification violates: %v", s.Violations(f.Want))
	}
	// Priority partition: {P}, {D}, {I,O,N}, {B,C,E,F,G,M}.
	pr := s.Priorities()
	if pr.Max != 4 {
		t.Errorf("priorities = %d, want 4", pr.Max)
	}
	same := func(a, b Attr) bool { return pr.Priority[a] == pr.Priority[b] }
	if !same(f.I, f.O) || !same(f.O, f.N) {
		t.Error("I,O,N must share a priority")
	}
	big := []Attr{f.B, f.C, f.E, f.F, f.G, f.M}
	for _, a := range big[1:] {
		if !same(big[0], a) {
			t.Errorf("%s not in the big SCC priority", s.AttrName(a))
		}
	}
	if same(f.P, f.D) || same(f.P, f.B) || same(f.D, f.B) || same(f.I, f.B) {
		t.Error("distinct components merged")
	}
	// Dependency order: D before (lower priority than) the big SCC, which
	// is above {I,O,N}.
	if !(pr.Priority[f.D] < pr.Priority[f.C]) || !(pr.Priority[f.I] < pr.Priority[f.B]) {
		t.Errorf("priority order wrong: D=%d C=%d I=%d B=%d",
			pr.Priority[f.D], pr.Priority[f.C], pr.Priority[f.I], pr.Priority[f.B])
	}
	// Lattice structure sanity for the trace.
	if s.LubLHS(f.Want, []Attr{f.E, f.F}) != f.Want[f.F] {
		t.Error("lub{E,F} should equal λ(F)=L4 in the final assignment")
	}
}

func TestFormatAssignment(t *testing.T) {
	l := chain4(t)
	s := NewSet(l)
	s.MustAttr("b")
	s.MustAttr("a")
	m := Assignment{lv(t, l, "S"), lv(t, l, "U")}
	if got := s.FormatAssignment(m); got != "a=U b=S" {
		t.Errorf("FormatAssignment = %q", got)
	}
}

func TestParseIntoReader(t *testing.T) {
	l := chain4(t)
	s := NewSet(l)
	if err := s.ParseInto(strings.NewReader("a >= S\n")); err != nil {
		t.Fatal(err)
	}
	if len(s.Constraints()) != 1 {
		t.Fatal("reader parse failed")
	}
}
