package workload

import (
	"math/rand"
	"testing"

	"minup/internal/graph"
	"minup/internal/lattice"
)

func TestConstraintsShapes(t *testing.T) {
	lat := lattice.FigureOneB()

	// Acyclic spec generates a DAG.
	s := MustConstraints(lat, ConstraintSpec{
		Seed: 1, NumAttrs: 30, NumConstraints: 80, MaxLHS: 3, LevelRHSFraction: 0.3,
	})
	if !s.Acyclic() {
		t.Error("acyclic spec produced a cycle")
	}
	if len(s.Constraints()) != 80 || s.NumAttrs() != 30 {
		t.Errorf("shape: %d constraints, %d attrs", len(s.Constraints()), s.NumAttrs())
	}

	// SingleSCC spec puts every attribute into one component.
	s2 := MustConstraints(lat, ConstraintSpec{
		Seed: 2, NumAttrs: 20, NumConstraints: 40, MaxLHS: 3,
		LevelRHSFraction: 0.3, Cyclic: true, SingleSCC: true,
	})
	scc := graph.KosarajuSCC(s2.Graph())
	if scc.NumComponents() != 1 {
		t.Errorf("SingleSCC produced %d components", scc.NumComponents())
	}

	// MaxLHS respected.
	for _, c := range s.Constraints() {
		if len(c.LHS) > 3 {
			t.Errorf("lhs width %d exceeds 3", len(c.LHS))
		}
	}

	// Upper bounds generated when requested.
	s3 := MustConstraints(lat, ConstraintSpec{
		Seed: 3, NumAttrs: 40, NumConstraints: 40, MaxLHS: 2,
		LevelRHSFraction: 0.5, UpperBoundFraction: 1.0,
	})
	if len(s3.UpperBounds()) != 40 {
		t.Errorf("upper bounds = %d, want 40", len(s3.UpperBounds()))
	}
}

func TestConstraintsDeterministic(t *testing.T) {
	lat := lattice.MustChain("c", "a", "b", "z")
	spec := ConstraintSpec{Seed: 7, NumAttrs: 10, NumConstraints: 20, MaxLHS: 3,
		LevelRHSFraction: 0.4, Cyclic: true}
	s1 := MustConstraints(lat, spec)
	s2 := MustConstraints(lat, spec)
	if len(s1.Constraints()) != len(s2.Constraints()) {
		t.Fatal("nondeterministic constraint count")
	}
	for i := range s1.Constraints() {
		if s1.Format(s1.Constraints()[i]) != s2.Format(s2.Constraints()[i]) {
			t.Fatalf("constraint %d differs between runs", i)
		}
	}
}

func TestConstraintsValidation(t *testing.T) {
	lat := lattice.MustChain("c", "a", "b")
	if _, err := Constraints(lat, ConstraintSpec{NumAttrs: 1}); err == nil {
		t.Error("single attribute accepted")
	}
	if _, err := Constraints(lat, ConstraintSpec{NumAttrs: 5, SingleSCC: true}); err == nil {
		t.Error("SingleSCC without Cyclic accepted")
	}
}

func TestRandomLevel(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	mls := lattice.MustMLS("m", []string{"U", "S"}, []string{"a", "b", "c"})
	seen := map[lattice.Level]bool{}
	for i := 0; i < 200; i++ {
		l := RandomLevel(mls, rng)
		if !mls.Contains(l) {
			t.Fatalf("sampled level outside lattice: %d", l)
		}
		seen[l] = true
	}
	if len(seen) < 8 {
		t.Errorf("poor coverage: %d distinct levels", len(seen))
	}
	ch := lattice.MustChain("c", "x", "y", "z")
	for i := 0; i < 20; i++ {
		if l := RandomLevel(ch, rng); !ch.Contains(l) {
			t.Fatalf("chain sample out of range")
		}
	}
}

func TestUpperHalfLevel(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	lat := lattice.FigureOneB()
	chain := lattice.ChainDown(lat, lat.Top())
	mid := chain[len(chain)/2]
	for i := 0; i < 50; i++ {
		l := UpperHalfLevel(lat, rng)
		if !lat.Dominates(l, mid) {
			t.Fatalf("UpperHalfLevel %s below mid %s",
				lat.FormatLevel(l), lat.FormatLevel(mid))
		}
	}
}

func TestRandomSublattice(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		l, err := RandomSublattice(seed, 6, 8)
		if err != nil {
			t.Fatal(err)
		}
		if err := lattice.Check(l); err != nil {
			t.Fatalf("seed=%d: invalid lattice: %v", seed, err)
		}
		if l.Size() < 2 {
			t.Errorf("seed=%d: degenerate lattice", seed)
		}
	}
	if _, err := RandomSublattice(1, 30, 5); err == nil {
		t.Error("oversized universe accepted")
	}
}

func TestRandomSAT3(t *testing.T) {
	inst, err := RandomSAT3(5, 10, 42)
	if err != nil {
		t.Fatal(err)
	}
	if inst.NumVars != 10 || len(inst.Clauses) != 42 {
		t.Fatalf("shape: %d vars %d clauses", inst.NumVars, len(inst.Clauses))
	}
	for _, cl := range inst.Clauses {
		vars := map[int]bool{}
		for _, lit := range cl {
			v := lit
			if v < 0 {
				v = ^v
			}
			if v < 0 || v >= inst.NumVars {
				t.Fatalf("literal out of range: %d", lit)
			}
			if vars[v] {
				t.Fatalf("clause repeats variable: %v", cl)
			}
			vars[v] = true
		}
	}
	if _, err := RandomSAT3(1, 2, 5); err == nil {
		t.Error("too few variables accepted")
	}
}
