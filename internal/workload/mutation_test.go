package workload

import (
	"reflect"
	"strings"
	"testing"
)

func mutationSpec(seed int64) MutationSpec {
	return MutationSpec{
		Seed:             seed,
		NumPolicies:      8,
		NumMutations:     300,
		PutFraction:      0.2,
		DeleteFraction:   0.1,
		AttrsPerPolicy:   6,
		ConsPerPut:       4,
		ConsPerAppend:    3,
		LevelRHSFraction: 0.4,
		NewAttrFraction:  0.1,
	}
}

func TestMutationStreamDeterministicPerSeed(t *testing.T) {
	// Same seed ⇒ byte-identical stream. This is what makes a load run
	// reproducible: a failing stage can be replayed from its seed alone.
	a, err := MutationStream(mutationSpec(42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := MutationStream(mutationSpec(42))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		for i := range a {
			if !reflect.DeepEqual(a[i], b[i]) {
				t.Fatalf("streams diverge at index %d:\n%+v\nvs\n%+v", i, a[i], b[i])
			}
		}
		t.Fatal("streams differ but no diverging index found")
	}
}

func TestMutationStreamDistinctSeedsDistinctMixes(t *testing.T) {
	a, err := MutationStream(mutationSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := MutationStream(mutationSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, b) {
		t.Fatal("seeds 1 and 2 produced identical streams")
	}
	// Not just different somewhere deep: the op sequences themselves must
	// diverge, i.e. the seed drives the mix, not only the constraint text.
	opsOf := func(ms []Mutation) string {
		var sb strings.Builder
		for _, m := range ms {
			sb.WriteByte(byte('0' + m.Op))
		}
		return sb.String()
	}
	if opsOf(a) == opsOf(b) {
		t.Fatal("distinct seeds produced the identical op sequence")
	}
}

func TestMutationStreamValidityInvariants(t *testing.T) {
	// The documented contract: every mutation is valid against the state
	// its predecessors produce — first op per name is a put, appends and
	// deletes only target live policies.
	ms, err := MutationStream(mutationSpec(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 300 {
		t.Fatalf("stream length %d, want 300", len(ms))
	}
	live := map[string]bool{}
	counts := map[MutationOp]int{}
	for i, m := range ms {
		counts[m.Op]++
		switch m.Op {
		case OpPut:
			if m.Lattice == "" || m.Constraints == "" {
				t.Fatalf("mutation %d: put without lattice/constraints: %+v", i, m)
			}
			live[m.Name] = true
		case OpAppend:
			if !live[m.Name] {
				t.Fatalf("mutation %d: append to dead policy %q", i, m.Name)
			}
			if m.Constraints == "" {
				t.Fatalf("mutation %d: empty append", i)
			}
		case OpDelete:
			if !live[m.Name] {
				t.Fatalf("mutation %d: delete of dead policy %q", i, m.Name)
			}
			delete(live, m.Name)
		}
	}
	// All three op kinds must actually appear under this spec's mix.
	for _, op := range []MutationOp{OpPut, OpAppend, OpDelete} {
		if counts[op] == 0 {
			t.Fatalf("op %s never generated (counts %v)", op, counts)
		}
	}
}

func TestMutationStreamNamePrefix(t *testing.T) {
	spec := mutationSpec(3)
	spec.NamePrefix = "c07x"
	ms, err := MutationStream(spec)
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range ms {
		if !strings.HasPrefix(m.Name, "c07x") {
			t.Fatalf("mutation %d: name %q missing prefix", i, m.Name)
		}
	}
	// Prefix aside, the stream is the same shape as the default-prefix one
	// for the same seed: the prefix must not perturb the RNG draws.
	def, err := MutationStream(mutationSpec(3))
	if err != nil {
		t.Fatal(err)
	}
	for i := range ms {
		if ms[i].Op != def[i].Op || ms[i].Constraints != def[i].Constraints {
			t.Fatalf("prefix perturbed the stream at index %d: %+v vs %+v", i, ms[i], def[i])
		}
		if strings.TrimPrefix(ms[i].Name, "c07x") != strings.TrimPrefix(def[i].Name, "p") {
			t.Fatalf("prefix changed name selection at index %d: %q vs %q", i, ms[i].Name, def[i].Name)
		}
	}
}

func TestMutationStreamSpecValidation(t *testing.T) {
	bad := []func(*MutationSpec){
		func(s *MutationSpec) { s.NumPolicies = 0 },
		func(s *MutationSpec) { s.AttrsPerPolicy = 1 },
		func(s *MutationSpec) { s.ConsPerPut = 0 },
		func(s *MutationSpec) { s.ConsPerAppend = 0 },
	}
	for i, mutate := range bad {
		spec := mutationSpec(1)
		mutate(&spec)
		if _, err := MutationStream(spec); err == nil {
			t.Errorf("case %d: invalid spec accepted", i)
		}
	}
}
