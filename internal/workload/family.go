package workload

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"minup/internal/lattice"
)

// FamilyInstance is one generated instance of a registered family: the
// catalog-ready policy source texts, plus (for frontend-backed families)
// the source-problem JSON document that round-trips through the
// frontend's Parse and is the body of POST /problems/{family}.
type FamilyInstance struct {
	// Name is the instance's suggested policy name.
	Name string
	// JSON is the source-problem instance document; nil for engine-native
	// families (the paper-shaped generator has no source problem to show).
	JSON []byte
	// Lattice and Constraints are the compiled policy source texts.
	Lattice     string
	Constraints string
}

// Family is one registered instance family: a named, seeded generator of
// engine instances. The paper-shaped generator registers as "paper";
// internal/frontend mirrors each problem frontend ("suppress", "depinf")
// in here on registration.
//
// Determinism contract: Generate MUST be a pure function of (seed, size) —
// it derives its own *rand.Rand from the seed and shares no RNG state with
// any other family or package-level source. Registering a new family must
// therefore never perturb an existing family's draws for a given seed;
// TestFamilyRegistryIndependence holds every family to this, the registry
// analogue of the MutationStream NamePrefix determinism test.
type Family struct {
	Name     string
	Describe string
	Generate func(seed int64, size int) (FamilyInstance, error)
}

var (
	familyMu sync.RWMutex
	families = make(map[string]Family)
)

// RegisterFamily installs a family in the registry. Family names are
// non-empty path-segment-safe tokens; duplicates are rejected.
func RegisterFamily(f Family) error {
	if f.Name == "" || strings.ContainsAny(f.Name, "/ \t\n") {
		return fmt.Errorf("workload: invalid family name %q", f.Name)
	}
	if f.Generate == nil {
		return fmt.Errorf("workload: family %q has no generator", f.Name)
	}
	familyMu.Lock()
	defer familyMu.Unlock()
	if _, dup := families[f.Name]; dup {
		return fmt.Errorf("workload: family %q registered twice", f.Name)
	}
	families[f.Name] = f
	return nil
}

// MustRegisterFamily is RegisterFamily that panics on error, for
// package-init registration where a conflict is a programming error.
func MustRegisterFamily(f Family) {
	if err := RegisterFamily(f); err != nil {
		panic(err)
	}
}

// LookupFamily returns a registered family.
func LookupFamily(name string) (Family, bool) {
	familyMu.RLock()
	defer familyMu.RUnlock()
	f, ok := families[name]
	return f, ok
}

// FamilyNames returns the registered family names, sorted, so listings
// and sweeps are independent of registration order.
func FamilyNames() []string {
	familyMu.RLock()
	defer familyMu.RUnlock()
	out := make([]string, 0, len(families))
	for name := range families {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// GenerateFamily generates one instance of a registered family.
func GenerateFamily(name string, seed int64, size int) (FamilyInstance, error) {
	f, ok := LookupFamily(name)
	if !ok {
		return FamilyInstance{}, fmt.Errorf("workload: unknown instance family %q (have %s)",
			name, strings.Join(FamilyNames(), ", "))
	}
	return f.Generate(seed, size)
}

// The engine-native paper-shaped family: a mid-sized cyclic ConstraintSpec
// instance over the standard 4-level chain, sized by the size knob. This
// is the same shape the MutationStream and the solve benches use, exposed
// through the family registry so sweeps can compare paper-shaped
// instances against frontend-compiled ones under one surface.
func init() {
	MustRegisterFamily(Family{
		Name:     "paper",
		Describe: "paper-shaped mlsdb instance: cyclic random constraint hypergraph over a 4-level chain",
		Generate: func(seed int64, size int) (FamilyInstance, error) {
			if size < 1 {
				size = 1
			}
			attrs := 6 * size
			if attrs < 8 {
				attrs = 8
			}
			lat := mutationChain()
			set, err := Constraints(lat, ConstraintSpec{
				Seed:             seed,
				NumAttrs:         attrs,
				NumConstraints:   3 * attrs,
				MaxLHS:           3,
				LevelRHSFraction: 0.35,
				Cyclic:           true,
			})
			if err != nil {
				return FamilyInstance{}, err
			}
			var text strings.Builder
			if _, err := set.WriteTo(&text); err != nil {
				return FamilyInstance{}, err
			}
			return FamilyInstance{
				Name:        fmt.Sprintf("paper-s%d-n%d", seed, size),
				Lattice:     mutationLattice,
				Constraints: text.String(),
			}, nil
		},
	})
}

// mutationChain is the in-memory form of mutationLattice, shared by the
// paper family generator.
func mutationChain() lattice.Lattice { return lattice.MustChain("mil", mutationLevels...) }
