package workload

import (
	"fmt"
	"math/rand"
	"strings"
)

// MutationOp enumerates the policy-catalog mutation kinds a MutationStream
// emits.
type MutationOp uint8

const (
	// OpPut creates or replaces a policy from lattice + constraint text.
	OpPut MutationOp = iota
	// OpAppend adds constraint text to an existing policy.
	OpAppend
	// OpDelete removes a policy.
	OpDelete
)

// String names the op for logs and test failures.
func (op MutationOp) String() string {
	switch op {
	case OpPut:
		return "put"
	case OpAppend:
		return "append"
	case OpDelete:
		return "delete"
	}
	return fmt.Sprintf("MutationOp(%d)", uint8(op))
}

// Mutation is one step of a generated catalog workload: plain data (op,
// name, source texts) so the package stays independent of the catalog that
// consumes it.
type Mutation struct {
	Op   MutationOp
	Name string
	// Lattice is the lattice text (OpPut only).
	Lattice string
	// Constraints is the constraint text (OpPut and OpAppend).
	Constraints string
}

// MutationSpec describes the shape of a MutationStream. The JSON tags are
// the vocabulary of internal/load's plan files.
type MutationSpec struct {
	Seed int64 `json:"seed,omitempty"`
	// NumPolicies is the size of the policy-name pool the stream draws
	// from ("p000"...).
	NumPolicies int `json:"num_policies,omitempty"`
	// NamePrefix replaces the default "p" policy-name prefix. Concurrent
	// load clients each generate their own stream under a distinct prefix,
	// so every client's mutations stay valid against the shared catalog no
	// matter how the clients interleave.
	NamePrefix string `json:"name_prefix,omitempty"`
	// NumMutations is the length of the stream.
	NumMutations int `json:"num_mutations,omitempty"`
	// PutFraction and DeleteFraction weight the op mix; the remainder is
	// appends. A put is forced whenever no live policy exists for an
	// append/delete to land on, so the realized mix can skew toward puts.
	PutFraction    float64 `json:"put_fraction,omitempty"`
	DeleteFraction float64 `json:"delete_fraction,omitempty"`
	// AttrsPerPolicy is the attribute universe of each put's constraint
	// text ("a000"...); appends draw from the same universe and
	// occasionally introduce a fresh attribute.
	AttrsPerPolicy int `json:"attrs_per_policy,omitempty"`
	// ConsPerPut and ConsPerAppend bound the constraint lines per put
	// (exactly ConsPerPut) and per append (1..ConsPerAppend).
	ConsPerPut    int `json:"cons_per_put,omitempty"`
	ConsPerAppend int `json:"cons_per_append,omitempty"`
	// LevelRHSFraction is the probability a generated constraint's
	// right-hand side is a level constant rather than an attribute.
	LevelRHSFraction float64 `json:"level_rhs_fraction,omitempty"`
	// NewAttrFraction is the probability an append line introduces an
	// attribute the policy has not seen, exercising the repair path that
	// extends the solution to new attributes.
	NewAttrFraction float64 `json:"new_attr_fraction,omitempty"`
}

// mutationLattice is the fixed 4-level chain every generated policy uses;
// the level names below must stay parseable levels of it.
const mutationLattice = "chain mil\nlevels U C S TS\n"

var mutationLevels = []string{"U", "C", "S", "TS"}

// MutationStream generates a deterministic seeded sequence of policy
// creates, constraint appends, and deletes for catalog soak tests. Every
// emitted mutation is valid against the catalog state produced by its
// predecessors: the first op on a name is always a put, appends and
// deletes only target live policies, and the generated constraint sets
// contain no §6 upper bounds, so every policy stays solvable and appends
// stay on the incremental-repair path.
func MutationStream(spec MutationSpec) ([]Mutation, error) {
	if spec.NumPolicies < 1 {
		return nil, fmt.Errorf("workload: MutationStream needs at least 1 policy, have %d", spec.NumPolicies)
	}
	if spec.AttrsPerPolicy < 2 {
		return nil, fmt.Errorf("workload: MutationStream needs at least 2 attrs per policy, have %d", spec.AttrsPerPolicy)
	}
	if spec.ConsPerPut < 1 || spec.ConsPerAppend < 1 {
		return nil, fmt.Errorf("workload: MutationStream needs positive ConsPerPut/ConsPerAppend")
	}
	prefix := spec.NamePrefix
	if prefix == "" {
		prefix = "p"
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	names := make([]string, spec.NumPolicies)
	for i := range names {
		names[i] = fmt.Sprintf("%s%03d", prefix, i)
	}
	live := make(map[string]bool)
	freshAttr := 0

	attr := func() string { return fmt.Sprintf("a%03d", rng.Intn(spec.AttrsPerPolicy)) }
	level := func() string { return mutationLevels[rng.Intn(len(mutationLevels))] }
	// line emits one lower-bound constraint over the shared attribute
	// universe; allowFresh additionally permits a never-seen attribute.
	line := func(allowFresh bool) string {
		members := []string{attr()}
		if allowFresh && rng.Float64() < spec.NewAttrFraction {
			members[0] = fmt.Sprintf("n%04d", freshAttr)
			freshAttr++
		}
		lhs := members[0]
		if rng.Intn(3) == 0 { // complex constraint
			members = append(members, attr())
			lhs = fmt.Sprintf("lub(%s, %s)", members[0], members[1])
		}
		if rng.Float64() < spec.LevelRHSFraction {
			return fmt.Sprintf("%s >= %s", lhs, level())
		}
		// Attribute rhs: the parser rejects an rhs that also appears on the
		// lhs (trivially satisfied), so redraw; fall back to a level when
		// the universe is too small to miss the lhs.
		for try := 0; try < 8; try++ {
			rhs := attr()
			if rhs != members[0] && (len(members) == 1 || rhs != members[1]) {
				return fmt.Sprintf("%s >= %s", lhs, rhs)
			}
		}
		return fmt.Sprintf("%s >= %s", lhs, level())
	}
	liveName := func() string {
		// Deterministic pick: lowest-index live name starting from a
		// random offset.
		off := rng.Intn(len(names))
		for i := range names {
			if n := names[(off+i)%len(names)]; live[n] {
				return n
			}
		}
		return ""
	}

	out := make([]Mutation, 0, spec.NumMutations)
	for len(out) < spec.NumMutations {
		r := rng.Float64()
		switch {
		case r < spec.PutFraction || len(live) == 0:
			var b strings.Builder
			fmt.Fprintf(&b, "attrs")
			for i := 0; i < spec.AttrsPerPolicy; i++ {
				fmt.Fprintf(&b, " a%03d", i)
			}
			b.WriteString("\n")
			for i := 0; i < spec.ConsPerPut; i++ {
				b.WriteString(line(false))
				b.WriteString("\n")
			}
			name := names[rng.Intn(len(names))]
			live[name] = true
			out = append(out, Mutation{Op: OpPut, Name: name, Lattice: mutationLattice, Constraints: b.String()})
		case r < spec.PutFraction+spec.DeleteFraction:
			name := liveName()
			delete(live, name)
			out = append(out, Mutation{Op: OpDelete, Name: name})
		default:
			var b strings.Builder
			for i, n := 0, 1+rng.Intn(spec.ConsPerAppend); i < n; i++ {
				b.WriteString(line(true))
				b.WriteString("\n")
			}
			out = append(out, Mutation{Op: OpAppend, Name: liveName(), Constraints: b.String()})
		}
	}
	return out, nil
}
