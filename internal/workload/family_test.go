// External test package: importing the concrete frontends here registers
// them as workload families, exactly as a production binary would, without
// an import cycle (frontend imports workload).
package workload_test

import (
	"bytes"
	"sort"
	"strings"
	"testing"

	_ "minup/internal/frontend/depinf"
	_ "minup/internal/frontend/suppress"
	"minup/internal/workload"
)

func TestFamilyNamesRegistered(t *testing.T) {
	names := workload.FamilyNames()
	if !sort.StringsAreSorted(names) {
		t.Fatalf("FamilyNames not sorted: %v", names)
	}
	for _, want := range []string{"depinf", "paper", "suppress"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("family %q not registered (have %v)", want, names)
		}
		f, ok := workload.LookupFamily(want)
		if !ok || f.Name != want {
			t.Fatalf("LookupFamily(%q) = %+v, %v", want, f, ok)
		}
	}
}

func TestRegisterFamilyRejects(t *testing.T) {
	gen := func(int64, int) (workload.FamilyInstance, error) { return workload.FamilyInstance{}, nil }
	cases := []workload.Family{
		{Name: "", Generate: gen},
		{Name: "two words", Generate: gen},
		{Name: "a/b", Generate: gen},
		{Name: "nilgen"},
		{Name: "paper", Generate: gen}, // duplicate
	}
	for _, f := range cases {
		if err := workload.RegisterFamily(f); err == nil {
			t.Errorf("RegisterFamily(%q) accepted an invalid registration", f.Name)
		}
	}
}

func TestGenerateFamilyUnknown(t *testing.T) {
	_, err := workload.GenerateFamily("no-such-family", 1, 1)
	if err == nil {
		t.Fatal("GenerateFamily of an unknown family succeeded")
	}
	if !strings.Contains(err.Error(), "paper") {
		t.Fatalf("error should list the known families, got: %v", err)
	}
}

// TestFamilyRegistryIndependence is the registry analogue of the
// MutationStream NamePrefix determinism test: every family's Generate is
// a pure function of (seed, size), so registering additional families —
// and generating families in any interleaving — must never perturb an
// existing family's draws.
func TestFamilyRegistryIndependence(t *testing.T) {
	seeds := []int64{1, 7, 42}
	snapshot := func(order []string) map[string]workload.FamilyInstance {
		out := make(map[string]workload.FamilyInstance)
		for _, name := range order {
			for _, seed := range seeds {
				fi, err := workload.GenerateFamily(name, seed, 2)
				if err != nil {
					t.Fatalf("GenerateFamily(%q, %d): %v", name, seed, err)
				}
				out[name+"/"+string(rune('0'+seed%10))] = fi
			}
		}
		return out
	}
	same := func(a, b map[string]workload.FamilyInstance, when string) {
		t.Helper()
		for k, fa := range a {
			fb, ok := b[k]
			if !ok {
				t.Fatalf("%s: instance %s missing", when, k)
			}
			if fa.Name != fb.Name || fa.Lattice != fb.Lattice || fa.Constraints != fb.Constraints || !bytes.Equal(fa.JSON, fb.JSON) {
				t.Fatalf("%s: family instance %s changed", when, k)
			}
		}
	}

	families := []string{"paper", "suppress", "depinf"}
	before := snapshot(families)

	// Generating in a different interleaving must not matter.
	reversed := []string{"depinf", "suppress", "paper"}
	same(before, snapshot(reversed), "after reordering generation")

	// Registering a new family must not perturb existing families' draws.
	err := workload.RegisterFamily(workload.Family{
		Name:     "independence-probe",
		Describe: "throwaway family for the registry independence test",
		Generate: func(seed int64, size int) (workload.FamilyInstance, error) {
			return workload.FamilyInstance{
				Name:        "probe",
				Lattice:     "chain probe\nlevels lo hi\n",
				Constraints: "attrs x\n",
			}, nil
		},
	})
	if err != nil {
		t.Fatalf("registering the probe family: %v", err)
	}
	same(before, snapshot(families), "after registering a new family")
}
