// Package workload generates the synthetic inputs for the experiments and
// randomized property tests: classification-constraint sets with controlled
// shape (size S, left-hand-side width, cyclicity, SCC structure), random
// lattices, and random 3-SAT instances for the Theorem 6.1 reduction.
//
// The paper publishes no experimental workloads (PODS'99 is a theory
// paper), so these generators are parameterized directly by the quantities
// its complexity bounds are stated in — N_A, S, H, B — making the measured
// scaling curves test exactly the claims of Theorem 5.2. All generators
// are deterministic given their seed.
package workload

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"minup/internal/constraint"
	"minup/internal/lattice"
)

// ConstraintSpec describes a random constraint-set shape.
type ConstraintSpec struct {
	Seed           int64
	NumAttrs       int
	NumConstraints int
	// MaxLHS is the maximum left-hand-side width; 1 generates only simple
	// constraints. Widths are drawn uniformly from [1, MaxLHS].
	MaxLHS int
	// LevelRHSFraction is the probability that a constraint's right-hand
	// side is a level constant rather than an attribute.
	LevelRHSFraction float64
	// Cyclic permits cycles: right-hand sides are drawn from the whole
	// attribute universe. When false the generated graph is a DAG (the
	// right-hand side always has a higher attribute index than the whole
	// left-hand side).
	Cyclic bool
	// SingleSCC additionally threads a simple-constraint ring through all
	// attributes so the entire set forms one strongly connected component —
	// the worst case of Theorem 5.2's cyclic bound (experiment E3).
	SingleSCC bool
	// UpperBoundFraction adds, for that fraction of attributes, a §6 upper
	// bound at a level drawn from the upper half of the lattice.
	UpperBoundFraction float64
}

// Constraints generates a random constraint set over the lattice.
func Constraints(lat lattice.Lattice, spec ConstraintSpec) (*constraint.Set, error) {
	return ConstraintsContext(context.Background(), lat, spec)
}

// ConstraintsContext is Constraints with cancellation: generation of large
// instances polls the context and aborts with its error when canceled
// (errors.Is(err, context.Canceled) / DeadlineExceeded).
func ConstraintsContext(ctx context.Context, lat lattice.Lattice, spec ConstraintSpec) (*constraint.Set, error) {
	if spec.NumAttrs < 2 {
		return nil, fmt.Errorf("workload: need at least 2 attributes, have %d", spec.NumAttrs)
	}
	if spec.MaxLHS < 1 {
		spec.MaxLHS = 1
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	s := constraint.NewSet(lat)
	attrs := make([]constraint.Attr, spec.NumAttrs)
	for i := range attrs {
		a, err := s.AddAttr(fmt.Sprintf("a%03d", i))
		if err != nil {
			return nil, err
		}
		attrs[i] = a
	}

	if spec.SingleSCC {
		if !spec.Cyclic {
			return nil, fmt.Errorf("workload: SingleSCC requires Cyclic")
		}
		for i := range attrs {
			next := attrs[(i+1)%len(attrs)]
			if err := s.Add([]constraint.Attr{attrs[i]}, constraint.AttrRHS(next)); err != nil {
				return nil, err
			}
		}
	}

	for gen := 0; len(s.Constraints()) < spec.NumConstraints; gen++ {
		if gen%4096 == 0 && ctx.Err() != nil {
			return nil, fmt.Errorf("workload: generation canceled: %w", context.Cause(ctx))
		}
		width := 1 + rng.Intn(spec.MaxLHS)
		if width > spec.NumAttrs-1 {
			width = spec.NumAttrs - 1
		}
		var lhs []constraint.Attr
		var rhs constraint.RHS
		if spec.Cyclic {
			perm := rng.Perm(spec.NumAttrs)
			for _, i := range perm[:width] {
				lhs = append(lhs, attrs[i])
			}
			if rng.Float64() < spec.LevelRHSFraction {
				rhs = constraint.LevelRHS(RandomLevel(lat, rng))
			} else {
				rhs = constraint.AttrRHS(attrs[perm[width]])
			}
		} else {
			// DAG shape: lhs indices all below the rhs index.
			hi := 1 + rng.Intn(spec.NumAttrs-1) // rhs candidate index ≥ 1
			if width > hi {
				width = hi
			}
			perm := rng.Perm(hi)
			for _, i := range perm[:width] {
				lhs = append(lhs, attrs[i])
			}
			if rng.Float64() < spec.LevelRHSFraction {
				rhs = constraint.LevelRHS(RandomLevel(lat, rng))
			} else {
				rhs = constraint.AttrRHS(attrs[hi])
			}
		}
		if _, err := s.AddIgnoreTrivial(lhs, rhs); err != nil {
			return nil, err
		}
	}

	if spec.UpperBoundFraction > 0 {
		for _, a := range attrs {
			if rng.Float64() < spec.UpperBoundFraction {
				s.MustAddUpper(a, UpperHalfLevel(lat, rng))
			}
		}
	}
	return s, nil
}

// MustConstraints is Constraints that panics on error, for benches.
func MustConstraints(lat lattice.Lattice, spec ConstraintSpec) *constraint.Set {
	s, err := Constraints(lat, spec)
	if err != nil {
		panic(err)
	}
	return s
}

// RandomLevel draws a uniform-ish random level of the lattice: uniform over
// the elements for enumerable lattices, uniform over packed classification
// and category bits for MLS.
func RandomLevel(lat lattice.Lattice, rng *rand.Rand) lattice.Level {
	switch l := lat.(type) {
	case *lattice.MLS:
		mask := rng.Uint64() & (uint64(1)<<l.NumCategories() - 1)
		lvl, err := l.LevelFromParts(rng.Intn(l.NumLevels()), mask)
		if err != nil {
			panic(err)
		}
		return lvl
	case lattice.Enumerable:
		elems := l.Elements()
		return elems[rng.Intn(len(elems))]
	default:
		panic(fmt.Sprintf("workload: cannot sample levels of %T", lat))
	}
}

// UpperHalfLevel draws a random level from the upper half of the lattice
// (a level dominating some mid-chain element), so generated upper bounds
// are loose enough to usually stay consistent.
func UpperHalfLevel(lat lattice.Lattice, rng *rand.Rand) lattice.Level {
	chain := lattice.ChainDown(lat, lat.Top())
	mid := chain[len(chain)/2]
	for i := 0; i < 32; i++ {
		l := RandomLevel(lat, rng)
		if lat.Dominates(l, mid) {
			return l
		}
	}
	return lat.Top()
}

// RandomSublattice builds a random lattice of roughly the requested size as
// a ∪/∩-closed family of subsets of a small universe (every such family is
// a lattice under inclusion, with lub = union and glb = intersection). The
// result is an explicit lattice with precomputed tables.
func RandomSublattice(seed int64, universe, seeds int) (*lattice.Explicit, error) {
	if universe < 1 || universe > 16 {
		return nil, fmt.Errorf("workload: universe must be 1..16, have %d", universe)
	}
	rng := rand.New(rand.NewSource(seed))
	full := uint32(1)<<universe - 1
	family := map[uint32]bool{0: true, full: true}
	var pending []uint32
	for i := 0; i < seeds; i++ {
		pending = append(pending, uint32(rng.Intn(int(full)+1)))
	}
	// Close under union and intersection.
	for len(pending) > 0 {
		x := pending[len(pending)-1]
		pending = pending[:len(pending)-1]
		if family[x] {
			continue
		}
		for y := range family {
			if u := x | y; !family[u] && u != x {
				pending = append(pending, u)
			}
			if v := x & y; !family[v] && v != x {
				pending = append(pending, v)
			}
		}
		family[x] = true
	}

	members := make([]uint32, 0, len(family))
	for x := range family {
		members = append(members, x)
	}
	sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
	names := make([]string, len(members))
	index := make(map[uint32]int, len(members))
	for i, x := range members {
		names[i] = fmt.Sprintf("s%04x", x)
		index[x] = i
	}
	// Hasse diagram: y is covered by x iff y ⊂ x with nothing between.
	covers := make(map[string][]string)
	for _, x := range members {
		for _, y := range members {
			if y == x || x&y != y {
				continue // need y ⊂ x
			}
			immediate := true
			for _, z := range members {
				if z != x && z != y && x&z == z && z&y == y {
					immediate = false
					break
				}
			}
			if immediate {
				covers[names[index[x]]] = append(covers[names[index[x]]], names[index[y]])
			}
		}
	}
	return lattice.NewExplicit(fmt.Sprintf("rand-sublattice-%d", seed), names, covers)
}

// SAT3 is a 3-SAT instance: each clause has exactly three literals;
// positive literal i is variable i (0-based), negative is ^i (bitwise
// complement).
type SAT3 struct {
	NumVars int
	Clauses [][3]int
}

// RandomSAT3 generates a random 3-SAT instance with the given number of
// variables and clauses, each clause over three distinct variables with
// random polarities.
func RandomSAT3(seed int64, numVars, numClauses int) (*SAT3, error) {
	if numVars < 3 {
		return nil, fmt.Errorf("workload: 3-SAT needs at least 3 variables")
	}
	rng := rand.New(rand.NewSource(seed))
	inst := &SAT3{NumVars: numVars}
	for i := 0; i < numClauses; i++ {
		perm := rng.Perm(numVars)
		var cl [3]int
		for j := 0; j < 3; j++ {
			v := perm[j]
			if rng.Intn(2) == 1 {
				cl[j] = ^v
			} else {
				cl[j] = v
			}
		}
		inst.Clauses = append(inst.Clauses, cl)
	}
	return inst, nil
}
