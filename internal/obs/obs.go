// Package obs is the stdlib-only telemetry layer for the solver service:
// atomic counters, fixed-bucket histograms, a registry that snapshots to a
// stable JSON shape, and the non-allocating event-sink interface the solver
// session streams into.
//
// The package deliberately depends on nothing but the standard library and
// knows nothing about lattices or constraints: solver events carry plain
// integers (attribute index, level handle, SCC id), so any package can
// implement a sink without importing the solver's types and the solver can
// emit events without allocation.
//
// Cost model: when no sink is installed and no registry is passed, the
// solver's hot path pays a single nil check per step — nothing here runs at
// all. Counters and histograms are single atomic adds, safe for unlimited
// concurrent use; Registry lookups take a read lock and are intended to be
// amortized once per solve, not once per step.
package obs

import (
	"fmt"
	"sync/atomic"
)

// Counter is a cumulative atomic counter. The zero value is ready to use.
// All methods are safe for concurrent use.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Histogram is a fixed-bucket cumulative histogram over uint64 values
// (durations in microseconds, operation counts, instance sizes). Bounds are
// inclusive upper bounds in increasing order; one implicit overflow bucket
// catches everything above the last bound. Observations are single atomic
// adds; the zero value is NOT ready to use — construct with NewHistogram.
type Histogram struct {
	bounds []uint64
	counts []atomic.Uint64 // len(bounds)+1; last is the overflow bucket
	count  atomic.Uint64
	sum    atomic.Uint64
}

// NewHistogram builds a histogram with the given inclusive upper bounds,
// which must be strictly increasing and non-empty.
func NewHistogram(bounds []uint64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not increasing at %d: %d <= %d",
				i, bounds[i], bounds[i-1]))
		}
	}
	return &Histogram{
		bounds: append([]uint64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	// Linear scan: bucket lists are short (≤ ~20) and the early buckets are
	// the hot ones, so this beats binary search in practice.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() uint64 { return h.sum.Load() }

// Snapshot returns a point-in-time copy of the histogram state. Concurrent
// observations may tear slightly between buckets and the total; each
// individual value is atomically read.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds, // immutable after construction
		Counts: make([]uint64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    h.sum.Load(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// HistogramSnapshot is the JSON shape of one histogram: parallel bounds and
// counts slices (counts has one extra trailing overflow bucket), plus the
// total observation count and value sum.
type HistogramSnapshot struct {
	Bounds []uint64 `json:"bounds"`
	Counts []uint64 `json:"counts"`
	Count  uint64   `json:"count"`
	Sum    uint64   `json:"sum"`
}

// Quantile estimates the q-quantile (q in [0,1]) from the bucketed counts:
// the inclusive upper bound of the bucket holding the target rank, with the
// last finite bound standing in for the overflow bucket. A bucket-upper-
// bound estimate is exactly what burn-rate and p99 gauges need — cheap and
// monotone, not interpolated.
func (s HistogramSnapshot) Quantile(q float64) uint64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	target := uint64(q * float64(s.Count))
	if target < 1 {
		target = 1
	}
	var cum uint64
	for i, c := range s.Counts {
		cum += c
		if cum >= target {
			if i < len(s.Bounds) {
				return s.Bounds[i]
			}
			break
		}
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Default bucket bounds shared by the solver's canonical metrics.
var (
	// DurationBucketsUS spans 1µs–10s for solve latency histograms.
	DurationBucketsUS = []uint64{1, 5, 10, 50, 100, 500, 1_000, 5_000,
		10_000, 50_000, 100_000, 500_000, 1_000_000, 10_000_000}
	// SizeBuckets spans 1–100k for operation-count and instance-size
	// histograms.
	SizeBuckets = []uint64{1, 2, 5, 10, 20, 50, 100, 200, 500, 1_000,
		2_000, 5_000, 10_000, 100_000}
)
