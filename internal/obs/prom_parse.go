package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// PromSample is one parsed text-format sample: a metric name, its label
// set (nil when the sample carries no labels), and the value.
type PromSample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Label returns the value of one label, or "" when absent.
func (s PromSample) Label(name string) string { return s.Labels[name] }

// PromMetrics is the parsed form of one Prometheus text exposition: the
// `# TYPE` declarations keyed by metric name and every sample in document
// order. Produced by ParsePrometheus; the query helpers (Value, Find,
// Labels, Histogram) cover the shapes WritePrometheus emits.
type PromMetrics struct {
	Types   map[string]string // metric name -> "counter" | "gauge" | "histogram" | ...
	Samples []PromSample
}

// legalMetricName reports whether name matches [a-zA-Z_:][a-zA-Z0-9_:]*.
func legalMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// parseLabels parses a `{k="v",...}` label block starting after the '{'
// and returns the label map plus the rest of the line after the closing
// '}'. Label values use the exposition escapes: \\, \", and \n.
func parseLabels(in string) (map[string]string, string, error) {
	labels := make(map[string]string)
	rest := in
	for {
		rest = strings.TrimLeft(rest, " \t")
		if rest == "" {
			return nil, "", fmt.Errorf("unterminated label block")
		}
		if rest[0] == '}' {
			return labels, rest[1:], nil
		}
		eq := strings.IndexByte(rest, '=')
		if eq < 0 {
			return nil, "", fmt.Errorf("label without '='")
		}
		name := strings.TrimSpace(rest[:eq])
		if !legalMetricName(name) {
			return nil, "", fmt.Errorf("illegal label name %q", name)
		}
		rest = strings.TrimLeft(rest[eq+1:], " \t")
		if rest == "" || rest[0] != '"' {
			return nil, "", fmt.Errorf("label %s: value not quoted", name)
		}
		rest = rest[1:]
		var b strings.Builder
		for {
			if rest == "" {
				return nil, "", fmt.Errorf("label %s: unterminated value", name)
			}
			c := rest[0]
			rest = rest[1:]
			if c == '"' {
				break
			}
			if c == '\\' {
				if rest == "" {
					return nil, "", fmt.Errorf("label %s: dangling escape", name)
				}
				switch rest[0] {
				case '\\':
					b.WriteByte('\\')
				case '"':
					b.WriteByte('"')
				case 'n':
					b.WriteByte('\n')
				default:
					return nil, "", fmt.Errorf("label %s: unknown escape \\%c", name, rest[0])
				}
				rest = rest[1:]
				continue
			}
			b.WriteByte(c)
		}
		labels[name] = b.String()
		rest = strings.TrimLeft(rest, " \t")
		if strings.HasPrefix(rest, ",") {
			rest = rest[1:]
		}
	}
}

// ParsePrometheus parses a Prometheus text exposition (version 0.0.4) into
// its samples and type declarations. It covers the subset WritePrometheus
// emits plus the common extras a scraper meets in the wild: # HELP and
// other comments are skipped, label values may contain escaped quotes,
// backslashes, newlines, and literal commas or '=', and a trailing
// timestamp after the value is tolerated and ignored. A malformed sample
// line is an error, so gates built on a scrape fail loudly rather than
// silently reading zeros.
func ParsePrometheus(r io.Reader) (*PromMetrics, error) {
	m := &PromMetrics{Types: make(map[string]string)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			// Only TYPE comments carry structure; HELP and free comments are
			// legal noise.
			if len(fields) >= 2 && fields[1] == "TYPE" {
				if len(fields) != 4 {
					return nil, fmt.Errorf("prom: line %d: malformed TYPE comment %q", lineNo, line)
				}
				if !legalMetricName(fields[2]) {
					return nil, fmt.Errorf("prom: line %d: illegal metric name %q", lineNo, fields[2])
				}
				m.Types[fields[2]] = fields[3]
			}
			continue
		}

		var s PromSample
		rest := line
		if i := strings.IndexAny(rest, "{ \t"); i >= 0 && rest[i] == '{' {
			s.Name = rest[:i]
			labels, after, err := parseLabels(rest[i+1:])
			if err != nil {
				return nil, fmt.Errorf("prom: line %d: %v", lineNo, err)
			}
			s.Labels = labels
			rest = after
		} else {
			sp := strings.IndexAny(rest, " \t")
			if sp < 0 {
				return nil, fmt.Errorf("prom: line %d: sample %q has no value", lineNo, line)
			}
			s.Name = rest[:sp]
			rest = rest[sp:]
		}
		if !legalMetricName(s.Name) {
			return nil, fmt.Errorf("prom: line %d: illegal metric name %q", lineNo, s.Name)
		}
		fields := strings.Fields(rest)
		if len(fields) < 1 || len(fields) > 2 {
			return nil, fmt.Errorf("prom: line %d: want 'value [timestamp]' after %s, have %q", lineNo, s.Name, rest)
		}
		v, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return nil, fmt.Errorf("prom: line %d: bad value %q: %v", lineNo, fields[0], err)
		}
		s.Value = v
		m.Samples = append(m.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("prom: %v", err)
	}
	return m, nil
}

// Find returns every sample with the given metric name, in document order.
func (m *PromMetrics) Find(name string) []PromSample {
	var out []PromSample
	for _, s := range m.Samples {
		if s.Name == name {
			out = append(out, s)
		}
	}
	return out
}

// Value returns the value of the first sample with the given name. For the
// counters and gauges WritePrometheus emits there is exactly one.
func (m *PromMetrics) Value(name string) (float64, bool) {
	for _, s := range m.Samples {
		if s.Name == name {
			return s.Value, true
		}
	}
	return 0, false
}

// Labels returns the label set of the first sample with the given name —
// the lookup shape of info-style gauges like build_info, whose payload is
// the labels rather than the (constant 1) value.
func (m *PromMetrics) Labels(name string) (map[string]string, bool) {
	for _, s := range m.Samples {
		if s.Name == name {
			return s.Labels, true
		}
	}
	return nil, false
}

// ValuesByLabel collects name's samples into a map keyed by the given
// label, e.g. bucket series keyed by "le".
func (m *PromMetrics) ValuesByLabel(name, label string) map[string]float64 {
	out := make(map[string]float64)
	for _, s := range m.Samples {
		if s.Name == name {
			out[s.Label(label)] = s.Value
		}
	}
	return out
}

// Histogram reconstructs a HistogramSnapshot from the cumulative
// `name_bucket{le=...}` / `name_sum` / `name_count` series WritePrometheus
// emits: cumulative buckets are de-cumulated back into per-bucket counts,
// with the `+Inf` bucket becoming the trailing overflow slot. The finite
// bounds must parse as unsigned integers (this registry's histograms are
// over uint64 values) and the cumulative counts must be non-decreasing.
func (m *PromMetrics) Histogram(name string) (HistogramSnapshot, error) {
	var snap HistogramSnapshot
	type bkt struct {
		bound uint64
		inf   bool
		cum   float64
	}
	var buckets []bkt
	seenCount := false
	for _, s := range m.Samples {
		switch s.Name {
		case name + "_bucket":
			le := s.Label("le")
			if le == "+Inf" {
				buckets = append(buckets, bkt{inf: true, cum: s.Value})
				continue
			}
			bound, err := strconv.ParseUint(le, 10, 64)
			if err != nil {
				return snap, fmt.Errorf("prom: histogram %s: bad le=%q: %v", name, le, err)
			}
			buckets = append(buckets, bkt{bound: bound, cum: s.Value})
		case name + "_sum":
			snap.Sum = uint64(s.Value)
		case name + "_count":
			snap.Count = uint64(s.Value)
			seenCount = true
		}
	}
	if len(buckets) == 0 {
		return snap, fmt.Errorf("prom: histogram %s: no _bucket series", name)
	}
	if !seenCount {
		return snap, fmt.Errorf("prom: histogram %s: no _count sample", name)
	}
	// The writer emits buckets in increasing-bound order with +Inf last;
	// sort defensively (stable on the writer's own output) and validate.
	sort.SliceStable(buckets, func(i, j int) bool {
		if buckets[i].inf != buckets[j].inf {
			return !buckets[i].inf
		}
		return buckets[i].bound < buckets[j].bound
	})
	if !buckets[len(buckets)-1].inf {
		return snap, fmt.Errorf("prom: histogram %s: no +Inf bucket", name)
	}
	var prev float64
	for i, b := range buckets {
		if b.cum < prev || b.cum > math.MaxUint64 {
			return snap, fmt.Errorf("prom: histogram %s: cumulative counts not non-decreasing at le index %d", name, i)
		}
		if !b.inf {
			snap.Bounds = append(snap.Bounds, b.bound)
		}
		snap.Counts = append(snap.Counts, uint64(b.cum-prev))
		prev = b.cum
	}
	return snap, nil
}
