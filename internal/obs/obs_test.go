package obs

import (
	"bytes"
	"encoding/json"
	"reflect"
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	if c.Value() != 0 {
		t.Fatalf("zero counter = %d", c.Value())
	}
	c.Inc()
	c.Add(41)
	if c.Value() != 42 {
		t.Fatalf("counter = %d, want 42", c.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]uint64{1, 10, 100})
	for _, v := range []uint64{0, 1, 2, 10, 11, 100, 1000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	// Inclusive upper bounds: ≤1 gets {0,1}, ≤10 gets {2,10}, ≤100 gets
	// {11,100}, overflow gets {1000}.
	want := []uint64{2, 2, 2, 1}
	if !reflect.DeepEqual(s.Counts, want) {
		t.Errorf("counts = %v, want %v", s.Counts, want)
	}
	if s.Count != 7 {
		t.Errorf("count = %d, want 7", s.Count)
	}
	if s.Sum != 0+1+2+10+11+100+1000 {
		t.Errorf("sum = %d", s.Sum)
	}
	if !reflect.DeepEqual(s.Bounds, []uint64{1, 10, 100}) {
		t.Errorf("bounds = %v", s.Bounds)
	}
}

func TestHistogramPanicsOnBadBounds(t *testing.T) {
	for _, bounds := range [][]uint64{nil, {}, {5, 5}, {10, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHistogram(%v) did not panic", bounds)
				}
			}()
			NewHistogram(bounds)
		}()
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("x")
	c1.Inc()
	if c2 := r.Counter("x"); c2 != c1 {
		t.Error("Counter returned a different instance for the same name")
	}
	h1 := r.Histogram("h", []uint64{1, 2})
	if h2 := r.Histogram("h", []uint64{9, 99}); h2 != h1 {
		t.Error("Histogram returned a different instance for the same name")
	}
}

func TestRegistrySnapshotJSONStable(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.count").Add(2)
	r.Counter("a.count").Add(1)
	r.Histogram("lat", []uint64{1, 10}).Observe(3)

	var buf1, buf2 bytes.Buffer
	if err := r.WriteJSON(&buf1); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf1.String() != buf2.String() {
		t.Error("WriteJSON not deterministic across calls")
	}
	var s Snapshot
	if err := json.Unmarshal(buf1.Bytes(), &s); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
	if s.Counters["a.count"] != 1 || s.Counters["b.count"] != 2 {
		t.Errorf("counters = %v", s.Counters)
	}
	if h := s.Histograms["lat"]; h.Count != 1 || h.Sum != 3 {
		t.Errorf("histogram = %+v", h)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Counter("n").Inc()
				r.Histogram("h", SizeBuckets).Observe(uint64(i))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("n").Value(); got != workers*per {
		t.Errorf("counter = %d, want %d", got, workers*per)
	}
	if got := r.Histogram("h", SizeBuckets).Count(); got != workers*per {
		t.Errorf("histogram count = %d, want %d", got, workers*per)
	}
}

func TestCountingSink(t *testing.T) {
	r := NewRegistry()
	s := NewCountingSink(r, "ev")
	s.Event(Event{Kind: EventTry})
	s.Event(Event{Kind: EventTry})
	s.Event(Event{Kind: EventTryFailed})
	if got := r.Counter("ev.try").Value(); got != 2 {
		t.Errorf("ev.try = %d, want 2", got)
	}
	if got := r.Counter("ev.try_failed").Value(); got != 1 {
		t.Errorf("ev.try_failed = %d, want 1", got)
	}
	if got := r.Counter("ev.assign").Value(); got != 0 {
		t.Errorf("ev.assign = %d, want 0", got)
	}
}

func TestTeeAndFuncSinks(t *testing.T) {
	var a, b []EventKind
	tee := TeeSink{
		SinkFunc(func(e Event) { a = append(a, e.Kind) }),
		SinkFunc(func(e Event) { b = append(b, e.Kind) }),
	}
	tee.Event(Event{Kind: EventAssign})
	tee.Event(Event{Kind: EventDone})
	want := []EventKind{EventAssign, EventDone}
	if !reflect.DeepEqual(a, want) || !reflect.DeepEqual(b, want) {
		t.Errorf("tee fan-out: a=%v b=%v want %v", a, b, want)
	}
}

func TestEventKindStrings(t *testing.T) {
	want := map[EventKind]string{
		EventAssign:    "assign",
		EventTry:       "try",
		EventTryFailed: "try_failed",
		EventLower:     "lower",
		EventCollapse:  "collapse",
		EventDone:      "done",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), s)
		}
	}
}

// TestHistogramConcurrentObserveSnapshot races Observe against Snapshot and
// WritePrometheus under -race: concurrent scrapes must never tear a bucket
// or lose an observation, and the final snapshot sees every write.
func TestHistogramConcurrentObserveSnapshot(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", DurationBucketsUS)
	const workers, per = 4, 20_000
	var writers sync.WaitGroup
	for w := 0; w < workers; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; i < per; i++ {
				h.Observe(uint64((w*per + i) % 1_000_000))
			}
		}(w)
	}
	writersDone := make(chan struct{})
	go func() { writers.Wait(); close(writersDone) }()

	var prev uint64
	for done := false; !done; {
		select {
		case <-writersDone:
			done = true
		default:
		}
		s := h.Snapshot()
		if s.Count < prev {
			t.Fatalf("count went backwards: %d -> %d", prev, s.Count)
		}
		prev = s.Count
		var buf bytes.Buffer
		if err := r.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Contains(buf.Bytes(), []byte("lat")) {
			t.Fatal("scrape lost the histogram series")
		}
	}
	if s := h.Snapshot(); s.Count != workers*per {
		t.Fatalf("final count = %d, want %d", s.Count, workers*per)
	}
}

func TestCollectorTickAndStop(t *testing.T) {
	r := NewRegistry()
	tr := NewSLOTracker(SLOSpec{Route: "solve", Availability: 0.999})
	c := NewCollector(r, tr, time.Hour)
	c.Start()
	c.Start() // idempotent
	snap := r.Snapshot()
	for _, name := range []string{
		"runtime.goroutines", "runtime.heap_alloc_bytes", "runtime.heap_sys_bytes",
		"runtime.gc_pause_total_us", "runtime.gc_cycles",
	} {
		if _, ok := snap.Gauges[name]; !ok {
			t.Errorf("gauge %s not sampled by Start's immediate tick", name)
		}
	}
	if _, ok := snap.Gauges["slo.solve.avail_burn_5m_milli"]; !ok {
		t.Error("SLO gauges not republished by the collector tick")
	}
	// The fsync gauge appears only once the WAL histogram exists.
	if _, ok := snap.Gauges["wal.fsync.p99_us"]; ok {
		t.Error("wal.fsync.p99_us published without a WAL histogram")
	}
	r.Histogram("wal.fsync.duration_us", DurationBucketsUS).Observe(250)
	c.Tick()
	if got := r.Snapshot().Gauges["wal.fsync.p99_us"]; got == 0 {
		t.Errorf("wal.fsync.p99_us = %d after an observed fsync", got)
	}
	c.Stop()
	c.Stop() // idempotent

	// Stop without Start must not hang.
	NewCollector(r, nil, time.Hour).Stop()
}
