// The flight recorder: an always-on, bounded-memory ring of one compact
// record per served request and per async catalog refresh, plus an anomaly
// path that snapshots the full solver event stream (and span tree, when the
// request was traced) of slow/errored/degraded/panicked work to a rotating,
// size-capped dump directory for post-hoc Perfetto analysis.
//
// Cost model: Begin/End on the happy path are one small allocation (the
// ActiveFlight handle), two short critical sections on the recorder mutex,
// and one histogram observe — no per-event work unless the handler arms a
// capture sink, and capture buffers are pooled so steady-state capture
// allocates nothing. Everything heavier (JSON encoding, file writes, dump
// rotation) happens only on the anomaly branch.
package obs

import (
	"encoding/json"
	"fmt"
	"html"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// FlightStats is the compact per-solve work summary carried by a flight
// record — the fields an SRE reads first when triaging a slow request.
type FlightStats struct {
	Tries       int   `json:"tries,omitempty"`
	FailedTries int   `json:"failed_tries,omitempty"`
	Collapses   int   `json:"collapses,omitempty"`
	TrySteps    int   `json:"try_steps,omitempty"`
	SolveUS     int64 `json:"solve_us,omitempty"`
}

// FlightRecord is one completed unit of work: an HTTP request (Kind "http")
// or an async catalog refresh job (Kind "refresh"). Records are stored by
// value in the recorder's ring, so keeping one costs no allocation.
type FlightRecord struct {
	Seq    uint64 `json:"seq"`
	Kind   string `json:"kind"`
	ID     string `json:"id,omitempty"` // request id for http records
	Route  string `json:"route"`
	Method string `json:"method,omitempty"`
	Status int    `json:"status,omitempty"`

	// Policy identity, for /policies/* requests and refresh jobs.
	Policy  string `json:"policy,omitempty"`
	Shard   int    `json:"shard,omitempty"`
	Version uint64 `json:"version,omitempty"`
	// Outcome is the refresh disposition: completed, repaired, stale,
	// failed, or panic.
	Outcome string `json:"outcome,omitempty"`

	Start       time.Time `json:"start"`
	DurationUS  int64     `json:"duration_us"`
	QueueWaitUS int64     `json:"queue_wait_us,omitempty"`

	Shed          bool   `json:"shed,omitempty"`
	Degraded      bool   `json:"degraded,omitempty"`
	DegradeReason string `json:"degrade_reason,omitempty"`
	Panicked      bool   `json:"panicked,omitempty"`
	CacheHit      bool   `json:"cache_hit,omitempty"`

	TraceID string      `json:"trace_id,omitempty"`
	Err     string      `json:"err,omitempty"`
	Stats   FlightStats `json:"stats"`

	// Dump is the anomaly dump file name under the recorder's dump
	// directory, set when this record triggered a capture.
	Dump string `json:"dump,omitempty"`

	// Active marks an in-flight record in snapshots (DurationUS is the
	// elapsed time so far). Never set on ring records.
	Active bool `json:"active,omitempty"`
}

// FlightOptions tunes a recorder. The zero value is usable: a 256-record
// ring with anomaly dumping disabled (no DumpDir).
type FlightOptions struct {
	// Size is the ring capacity in records (default 256).
	Size int
	// DumpDir, when non-empty, enables anomaly dumps: each anomalous
	// record is written there as a Perfetto-loadable JSON file.
	DumpDir string
	// DumpCapBytes bounds the dump directory's total size; after every
	// write the oldest dumps are pruned until the total fits (default
	// 32 MiB; the newest dump always survives).
	DumpCapBytes int64
	// SlowThreshold marks a request anomalous on duration alone (0
	// disables the slow trigger; errors/degradation/panics still fire).
	SlowThreshold time.Duration
	// CaptureEvents caps the solver events captured per request (default
	// 4096); the overflow is counted, not stored.
	CaptureEvents int
	// AnomalyKeep is the capacity of the separate recent-anomalies ring
	// (default 64), so a burst of healthy traffic cannot evict the one
	// record being triaged.
	AnomalyKeep int
	// SLO, when non-nil, is rendered by the /debug/requests handler
	// alongside the recorder's own state.
	SLO *SLOTracker
	// Now replaces time.Now for record timestamps (tests).
	Now func() time.Time
}

// FlightRecorder is the ring. Construct with NewFlightRecorder; all methods
// are safe for concurrent use.
type FlightRecorder struct {
	opt FlightOptions
	seq atomic.Uint64

	mu        sync.Mutex
	ring      []FlightRecord // capacity opt.Size; index total%Size
	total     uint64
	active    map[uint64]*ActiveFlight
	anomalies []FlightRecord // capacity opt.AnomalyKeep
	anomTotal uint64
	routes    map[string]*Histogram

	pool sync.Pool // *CaptureBuffer

	dumpMu       sync.Mutex
	dumpsWritten atomic.Uint64
	dumpsPruned  atomic.Uint64
	dumpErrors   atomic.Uint64
}

// NewFlightRecorder builds a recorder, preallocating the ring so steady
// state recording never grows memory.
func NewFlightRecorder(opt FlightOptions) *FlightRecorder {
	if opt.Size <= 0 {
		opt.Size = 256
	}
	if opt.DumpCapBytes <= 0 {
		opt.DumpCapBytes = 32 << 20
	}
	if opt.CaptureEvents <= 0 {
		opt.CaptureEvents = 4096
	}
	if opt.AnomalyKeep <= 0 {
		opt.AnomalyKeep = 64
	}
	f := &FlightRecorder{
		opt:       opt,
		ring:      make([]FlightRecord, opt.Size),
		active:    make(map[uint64]*ActiveFlight),
		anomalies: make([]FlightRecord, opt.AnomalyKeep),
		routes:    make(map[string]*Histogram),
	}
	f.pool.New = func() any {
		return &CaptureBuffer{events: make([]CapturedEvent, 0, opt.CaptureEvents)}
	}
	return f
}

func (f *FlightRecorder) now() time.Time {
	if f.opt.Now != nil {
		return f.opt.Now()
	}
	return time.Now()
}

// ---------------------------------------------------------------------------
// Capture: the per-request solver event buffer.

// CapturedEvent is one solver event with a timestamp relative to the
// request start, microseconds.
type CapturedEvent struct {
	Kind  EventKind `json:"kind"`
	Attr  int32     `json:"attr"`
	Level uint64    `json:"level"`
	SCC   int32     `json:"scc"`
	TUS   int64     `json:"t_us"`
}

// CaptureBuffer records a solver event stream with bounded memory. It is an
// EventSink; buffers come from the recorder's pool, so arming capture on
// every request allocates only until the pool warms.
type CaptureBuffer struct {
	start     time.Time
	events    []CapturedEvent
	truncated int
}

// Event appends one solver event, dropping (and counting) past capacity.
func (b *CaptureBuffer) Event(e Event) {
	if len(b.events) == cap(b.events) {
		b.truncated++
		return
	}
	b.events = append(b.events, CapturedEvent{
		Kind: e.Kind, Attr: e.Attr, Level: e.Level, SCC: e.SCC,
		TUS: time.Since(b.start).Microseconds(),
	})
}

func (b *CaptureBuffer) reset() {
	b.events = b.events[:0]
	b.truncated = 0
	b.start = time.Time{}
}

// ---------------------------------------------------------------------------
// Recording.

// ActiveFlight is one in-flight request's handle: created by Begin, carried
// through the request context, completed by End. Fields are immutable after
// Begin except the capture buffer and span, which belong to the request's
// own goroutine until End.
type ActiveFlight struct {
	fr      *FlightRecorder
	seq     uint64
	route   string
	method  string
	id      string
	start   time.Time
	capture *CaptureBuffer
	span    *Span
}

// Begin opens a flight for one HTTP request and registers it as active.
func (f *FlightRecorder) Begin(route, method, id string) *ActiveFlight {
	a := &ActiveFlight{
		fr:     f,
		seq:    f.seq.Add(1),
		route:  route,
		method: method,
		id:     id,
		start:  f.now(),
	}
	f.mu.Lock()
	f.active[a.seq] = a
	f.mu.Unlock()
	return a
}

// CaptureSink arms solver-event capture for this flight and returns the
// sink to pass as core.Options.Sink. The buffer is pooled; if the flight
// ends healthy the events are discarded, if it ends anomalous they go into
// the dump.
func (a *ActiveFlight) CaptureSink() EventSink {
	if a.capture == nil {
		b := a.fr.pool.Get().(*CaptureBuffer)
		b.start = a.start
		a.capture = b
	}
	return a.capture
}

// SetSpan attaches the request's root span; an anomalous flight dumps the
// finished span tree alongside the event stream.
func (a *ActiveFlight) SetSpan(sp *Span) { a.span = sp }

// End completes the flight: rec's identity fields are filled from the
// flight, the record enters the ring, and — when the record trips an
// anomaly trigger — the captured event stream and span tree are written to
// the dump directory. The capture buffer returns to the pool either way.
func (f *FlightRecorder) End(a *ActiveFlight, rec FlightRecord) {
	if a == nil {
		return
	}
	rec.Seq = a.seq
	rec.Kind = "http"
	rec.Route = a.route
	if rec.Method == "" {
		rec.Method = a.method
	}
	if rec.ID == "" {
		rec.ID = a.id
	}
	rec.Start = a.start
	if rec.DurationUS == 0 {
		rec.DurationUS = f.now().Sub(a.start).Microseconds()
	}

	capture := a.capture
	a.capture = nil
	if f.isAnomaly(&rec) {
		var events []CapturedEvent
		truncated := 0
		if capture != nil {
			events = capture.events
			truncated = capture.truncated
		}
		rec.Dump = f.writeDump(&rec, events, truncated, a.span)
	}
	if capture != nil {
		capture.reset()
		f.pool.Put(capture)
	}

	f.mu.Lock()
	delete(f.active, a.seq)
	f.push(rec)
	f.mu.Unlock()
}

// Record stores one already-completed unit of work (refresh jobs; anything
// without a Begin/End window). Identity fields are the caller's; anomalous
// records are dumped record-only (no event stream exists after the fact).
func (f *FlightRecorder) Record(rec FlightRecord) {
	rec.Seq = f.seq.Add(1)
	if rec.Start.IsZero() {
		rec.Start = f.now()
	}
	if f.isAnomaly(&rec) {
		rec.Dump = f.writeDump(&rec, nil, 0, nil)
	}
	f.mu.Lock()
	f.push(rec)
	f.mu.Unlock()
}

// push stores rec in the ring (and the anomaly side-ring) and observes its
// latency. Caller holds f.mu.
func (f *FlightRecorder) push(rec FlightRecord) {
	f.ring[f.total%uint64(len(f.ring))] = rec
	f.total++
	if rec.Dump != "" || f.isAnomaly(&rec) {
		f.anomalies[f.anomTotal%uint64(len(f.anomalies))] = rec
		f.anomTotal++
	}
	h := f.routes[rec.Route]
	if h == nil {
		h = NewHistogram(DurationBucketsUS)
		f.routes[rec.Route] = h
	}
	h.Observe(uint64(rec.DurationUS))
}

// isAnomaly implements the capture triggers: panicked, degraded, errored
// (5xx or explicit error text, or a failed refresh outcome), or slower than
// the threshold. A shed request is recorded but deliberately not anomalous:
// shedding is the designed overload posture, and an overload storm must not
// thrash the dump directory.
func (f *FlightRecorder) isAnomaly(rec *FlightRecord) bool {
	if rec.Shed {
		return false
	}
	if rec.Panicked || rec.Degraded || rec.Err != "" {
		return true
	}
	if rec.Status >= 500 {
		return true
	}
	if rec.Outcome == "failed" || rec.Outcome == "panic" {
		return true
	}
	if f.opt.SlowThreshold > 0 && rec.DurationUS > f.opt.SlowThreshold.Microseconds() {
		return true
	}
	return false
}

// ---------------------------------------------------------------------------
// Anomaly dumps.

// flightDump is the on-disk shape of one anomaly: a Chrome trace-event
// object (Perfetto loads it directly; the extra keys are ignored) carrying
// the flight record, the captured solver events as slices, and the span
// tree when the request was traced.
type flightDump struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	Record          FlightRecord  `json:"record"`
	Spans           *SpanNode     `json:"spans,omitempty"`
	TruncatedEvents int           `json:"truncated_events,omitempty"`
}

// writeDump serializes one anomaly to the dump directory and prunes old
// dumps past the byte cap. Returns the file name, or "" when dumping is
// disabled or failed (the record still enters the ring).
func (f *FlightRecorder) writeDump(rec *FlightRecord, events []CapturedEvent, truncated int, span *Span) string {
	if f.opt.DumpDir == "" {
		return ""
	}
	f.dumpMu.Lock()
	defer f.dumpMu.Unlock()
	if err := os.MkdirAll(f.opt.DumpDir, 0o755); err != nil {
		f.dumpErrors.Add(1)
		return ""
	}
	dump := flightDump{
		DisplayTimeUnit: "ms",
		Record:          *rec,
		TruncatedEvents: truncated,
	}
	dump.TraceEvents = append(dump.TraceEvents, chromeEvent{
		Name: "process_name", Ph: "M", PID: 1,
		Args: map[string]string{"name": "minupd flight " + rec.Route},
	})
	reqDur := rec.DurationUS
	dump.TraceEvents = append(dump.TraceEvents, chromeEvent{
		Name: rec.Route, Ph: "X", TS: 0, Dur: &reqDur, PID: 1, TID: 1,
		Args: map[string]string{
			"request_id": rec.ID,
			"status":     strconv.Itoa(rec.Status),
			"err":        rec.Err,
		},
	})
	if span != nil {
		node := span.Node(rec.Start)
		dump.Spans = &node
		span.Walk(func(s *Span) {
			end := s.EndTime()
			if end.IsZero() {
				end = s.StartTime()
			}
			dur := end.Sub(s.StartTime()).Microseconds()
			dump.TraceEvents = append(dump.TraceEvents, chromeEvent{
				Name: s.Name(), Ph: "X",
				TS:  s.StartTime().Sub(rec.Start).Microseconds(),
				Dur: &dur, PID: 1, TID: 2,
			})
		})
	}
	for i, e := range events {
		// Each event becomes a slice from the previous event's timestamp:
		// the stream reads as contiguous solver work in Perfetto.
		ts := int64(0)
		if i > 0 {
			ts = events[i-1].TUS
		}
		dur := e.TUS - ts
		dump.TraceEvents = append(dump.TraceEvents, chromeEvent{
			Name: e.Kind.String(), Ph: "X", TS: ts, Dur: &dur, PID: 1, TID: 3,
			Args: map[string]string{
				"attr":  strconv.FormatInt(int64(e.Attr), 10),
				"level": strconv.FormatUint(e.Level, 10),
				"scc":   strconv.FormatInt(int64(e.SCC), 10),
			},
		})
	}
	name := fmt.Sprintf("anomaly-%s-%08d.json", rec.Start.UTC().Format("20060102T150405.000000000"), rec.Seq)
	if err := writeJSONFile(filepath.Join(f.opt.DumpDir, name), dump); err != nil {
		f.dumpErrors.Add(1)
		return ""
	}
	f.dumpsWritten.Add(1)
	f.pruneLocked()
	return name
}

// FinalDump writes the whole recorder snapshot (recent ring, anomalies,
// per-route latency) to the dump directory — called at drain time so the
// last moments before a shutdown survive the process.
func (f *FlightRecorder) FinalDump(reason string) (string, error) {
	if f.opt.DumpDir == "" {
		return "", nil
	}
	f.dumpMu.Lock()
	defer f.dumpMu.Unlock()
	if err := os.MkdirAll(f.opt.DumpDir, 0o755); err != nil {
		return "", err
	}
	name := fmt.Sprintf("final-%s-%s.json", reason, f.now().UTC().Format("20060102T150405.000000000"))
	if err := writeJSONFile(filepath.Join(f.opt.DumpDir, name), f.Snapshot()); err != nil {
		return "", err
	}
	f.dumpsWritten.Add(1)
	f.pruneLocked()
	return name, nil
}

// writeJSONFile writes v as indented JSON via a temp file + rename, so a
// crash mid-dump never leaves a torn file for Perfetto to choke on.
func writeJSONFile(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// pruneLocked deletes the oldest dump files until the directory's total
// size fits DumpCapBytes; the newest file always survives even if it alone
// exceeds the cap. Caller holds dumpMu.
func (f *FlightRecorder) pruneLocked() {
	entries, err := os.ReadDir(f.opt.DumpDir)
	if err != nil {
		return
	}
	type dumpFile struct {
		name string
		size int64
		mod  time.Time
	}
	var files []dumpFile
	var total int64
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".json" {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		files = append(files, dumpFile{e.Name(), info.Size(), info.ModTime()})
		total += info.Size()
	}
	sort.Slice(files, func(i, j int) bool {
		if !files[i].mod.Equal(files[j].mod) {
			return files[i].mod.Before(files[j].mod)
		}
		return files[i].name < files[j].name
	})
	for len(files) > 1 && total > f.opt.DumpCapBytes {
		if os.Remove(filepath.Join(f.opt.DumpDir, files[0].name)) == nil {
			f.dumpsPruned.Add(1)
		}
		total -= files[0].size
		files = files[1:]
	}
}

// ---------------------------------------------------------------------------
// Introspection.

// RouteLatency is one route's latency distribution in a snapshot.
type RouteLatency struct {
	Count   uint64            `json:"count"`
	P50US   uint64            `json:"p50_us"`
	P99US   uint64            `json:"p99_us"`
	Buckets HistogramSnapshot `json:"buckets"`
}

// FlightSnapshot is the JSON shape of GET /debug/requests.
type FlightSnapshot struct {
	Total           uint64                  `json:"total_records"`
	AnomalyTotal    uint64                  `json:"total_anomalies"`
	Active          []FlightRecord          `json:"active"`
	Recent          []FlightRecord          `json:"recent"`
	RecentAnomalies []FlightRecord          `json:"recent_anomalies"`
	Routes          map[string]RouteLatency `json:"routes"`
	DumpDir         string                  `json:"dump_dir,omitempty"`
	DumpsWritten    uint64                  `json:"dumps_written"`
	DumpsPruned     uint64                  `json:"dumps_pruned"`
	DumpErrors      uint64                  `json:"dump_errors,omitempty"`
}

// Snapshot copies the recorder state: active flights, the recent ring and
// anomaly ring newest-first, and per-route latency distributions.
func (f *FlightRecorder) Snapshot() FlightSnapshot {
	now := f.now()
	f.mu.Lock()
	snap := FlightSnapshot{
		Total:           f.total,
		AnomalyTotal:    f.anomTotal,
		Recent:          ringCopy(f.ring, f.total),
		RecentAnomalies: ringCopy(f.anomalies, f.anomTotal),
		Routes:          make(map[string]RouteLatency, len(f.routes)),
		DumpDir:         f.opt.DumpDir,
		DumpsWritten:    f.dumpsWritten.Load(),
		DumpsPruned:     f.dumpsPruned.Load(),
		DumpErrors:      f.dumpErrors.Load(),
	}
	for _, a := range f.active {
		snap.Active = append(snap.Active, FlightRecord{
			Seq: a.seq, Kind: "http", ID: a.id, Route: a.route,
			Method: a.method, Start: a.start,
			DurationUS: now.Sub(a.start).Microseconds(), Active: true,
		})
	}
	for route, h := range f.routes {
		hs := h.Snapshot()
		snap.Routes[route] = RouteLatency{
			Count:   hs.Count,
			P50US:   hs.Quantile(0.50),
			P99US:   hs.Quantile(0.99),
			Buckets: hs,
		}
	}
	f.mu.Unlock()
	sort.Slice(snap.Active, func(i, j int) bool { return snap.Active[i].Seq < snap.Active[j].Seq })
	return snap
}

// ringCopy returns the ring's live records newest-first.
func ringCopy(ring []FlightRecord, total uint64) []FlightRecord {
	n := total
	if n > uint64(len(ring)) {
		n = uint64(len(ring))
	}
	out := make([]FlightRecord, 0, n)
	for i := uint64(0); i < n; i++ {
		out = append(out, ring[(total-1-i)%uint64(len(ring))])
	}
	return out
}

// ServeHTTP renders the recorder as JSON (?format=json) or a minimal HTML
// dashboard in the spirit of x/net/trace: active requests, SLO burn rates,
// per-route latency, recent anomalies with their dump files, and the recent
// request ring.
func (f *FlightRecorder) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	snap := f.Snapshot()
	var slo []SLOStatus
	if f.opt.SLO != nil {
		slo = f.opt.SLO.Status()
	}
	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(struct {
			FlightSnapshot
			SLO []SLOStatus `json:"slo,omitempty"`
		}{snap, slo})
		return
	}
	limit := 100
	if q := r.URL.Query().Get("n"); q != "" {
		if n, err := strconv.Atoi(q); err == nil && n > 0 {
			limit = n
		}
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprintf(w, "<!DOCTYPE html><html><head><title>minupd /debug/requests</title>"+
		"<style>body{font-family:monospace;margin:1em}table{border-collapse:collapse;margin:0.5em 0}"+
		"td,th{border:1px solid #999;padding:2px 8px;text-align:left}th{background:#eee}"+
		".bad{background:#fdd}.warn{background:#ffd}</style></head><body>")
	fmt.Fprintf(w, "<h1>/debug/requests</h1><p>%d records total, %d anomalies, %d active; dumps: %d written, %d pruned (dir %s)</p>",
		snap.Total, snap.AnomalyTotal, len(snap.Active), snap.DumpsWritten, snap.DumpsPruned, html.EscapeString(snap.DumpDir))
	fmt.Fprintf(w, `<p><a href="?format=json">json</a></p>`)

	if len(slo) > 0 {
		fmt.Fprintf(w, "<h2>SLOs</h2><table><tr><th>route</th><th>p99 target</th><th>avail target</th>"+
			"<th>req 5m/1h</th><th>avail burn 5m/1h</th><th>latency burn 5m/1h</th></tr>")
		for _, st := range slo {
			cls := ""
			if st.AvailBurn5m >= 1 || st.LatencyBurn5m >= 1 {
				cls = ` class="bad"`
			}
			fmt.Fprintf(w, "<tr%s><td>%s</td><td>%dµs</td><td>%.3f%%</td><td>%d / %d</td><td>%.2f / %.2f</td><td>%.2f / %.2f</td></tr>",
				cls, html.EscapeString(st.Route), st.P99TargetUS, st.Availability*100,
				st.Requests5m, st.Requests1h, st.AvailBurn5m, st.AvailBurn1h,
				st.LatencyBurn5m, st.LatencyBurn1h)
		}
		fmt.Fprintf(w, "</table>")
	}

	routeNames := make([]string, 0, len(snap.Routes))
	for name := range snap.Routes {
		routeNames = append(routeNames, name)
	}
	sort.Strings(routeNames)
	fmt.Fprintf(w, "<h2>Routes</h2><table><tr><th>route</th><th>count</th><th>p50</th><th>p99</th></tr>")
	for _, name := range routeNames {
		rl := snap.Routes[name]
		fmt.Fprintf(w, "<tr><td>%s</td><td>%d</td><td>%dµs</td><td>%dµs</td></tr>",
			html.EscapeString(name), rl.Count, rl.P50US, rl.P99US)
	}
	fmt.Fprintf(w, "</table>")

	writeTable := func(title string, recs []FlightRecord) {
		fmt.Fprintf(w, "<h2>%s</h2><table><tr><th>seq</th><th>kind</th><th>route</th><th>id/policy</th>"+
			"<th>status</th><th>dur</th><th>flags</th><th>err</th><th>dump</th></tr>", title)
		for i, rec := range recs {
			if i >= limit {
				fmt.Fprintf(w, "<tr><td colspan=9>… %d more (?n=)</td></tr>", len(recs)-limit)
				break
			}
			flags := ""
			if rec.Shed {
				flags += "shed "
			}
			if rec.Degraded {
				flags += "degraded(" + rec.DegradeReason + ") "
			}
			if rec.Panicked {
				flags += "panic "
			}
			if rec.CacheHit {
				flags += "hit "
			}
			if rec.Active {
				flags += "active "
			}
			if rec.Outcome != "" {
				flags += rec.Outcome + " "
			}
			ident := rec.ID
			if rec.Policy != "" {
				ident = rec.Policy + " v" + strconv.FormatUint(rec.Version, 10)
			}
			cls := ""
			if rec.Panicked || rec.Err != "" || rec.Status >= 500 {
				cls = ` class="bad"`
			} else if rec.Degraded {
				cls = ` class="warn"`
			}
			fmt.Fprintf(w, "<tr%s><td>%d</td><td>%s</td><td>%s</td><td>%s</td><td>%d</td><td>%dµs</td><td>%s</td><td>%s</td><td>%s</td></tr>",
				cls, rec.Seq, rec.Kind, html.EscapeString(rec.Route), html.EscapeString(ident),
				rec.Status, rec.DurationUS, html.EscapeString(flags),
				html.EscapeString(rec.Err), html.EscapeString(rec.Dump))
		}
		fmt.Fprintf(w, "</table>")
	}
	if len(snap.Active) > 0 {
		writeTable("Active", snap.Active)
	}
	writeTable("Recent anomalies", snap.RecentAnomalies)
	writeTable("Recent", snap.Recent)
	fmt.Fprintf(w, "</body></html>")
}
