package obs

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer mints spans. The zero value is usable and fully deterministic:
// span IDs are sequential starting at 1 and the trace ID is derived from
// the same sequence, which is what golden tests want. NewTracer seeds the
// trace ID with entropy so concurrent production traces do not collide.
//
// Now, when non-nil, replaces time.Now for every span start and end the
// tracer records; tests inject a fake clock here to make exported
// timestamps reproducible.
type Tracer struct {
	// Now supplies timestamps; nil means time.Now.
	Now func() time.Time

	traceID uint64
	ids     atomic.Uint64
}

// NewTracer returns a tracer whose trace ID is random. Span IDs are still
// sequential per tracer: uniqueness across traces comes from the trace ID.
func NewTracer() *Tracer {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Entropy failure leaves the deterministic fallback, which is
		// still a valid (if collision-prone) trace ID.
		return &Tracer{}
	}
	return &Tracer{traceID: binary.LittleEndian.Uint64(b[:])}
}

func (t *Tracer) now() time.Time {
	if t.Now != nil {
		return t.Now()
	}
	return time.Now()
}

// TraceID returns the tracer's trace identifier in hex.
func (t *Tracer) TraceID() string {
	id := t.traceID
	if id == 0 {
		id = 1 // deterministic zero-value tracer
	}
	return fmt.Sprintf("%016x", id)
}

// Start begins a root span.
func (t *Tracer) Start(name string) *Span {
	return t.StartAt(name, t.now())
}

// StartAt begins a root span with an explicit start time.
func (t *Tracer) StartAt(name string, start time.Time) *Span {
	return &Span{
		tracer: t,
		id:     t.ids.Add(1),
		name:   name,
		start:  start,
	}
}

// Span is one timed region of work. Spans form a tree: children are created
// with Child/ChildAt and are owned by their parent. Creating children and
// setting attributes are safe for concurrent use; End is not (end a span
// from the goroutine that owns it).
type Span struct {
	tracer *Tracer
	id     uint64
	parent uint64 // 0 for roots
	name   string
	start  time.Time

	mu       sync.Mutex
	end      time.Time
	attrs    []SpanAttr
	children []*Span
}

// SpanAttr is one key/value annotation on a span. Values are kept as
// strings so export needs no reflection.
type SpanAttr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// ID returns the span's identifier, unique within its tracer.
func (s *Span) ID() uint64 { return s.id }

// ParentID returns the parent span's ID, or 0 for a root span.
func (s *Span) ParentID() uint64 { return s.parent }

// Name returns the span name.
func (s *Span) Name() string { return s.name }

// StartTime returns when the span began.
func (s *Span) StartTime() time.Time { return s.start }

// EndTime returns when the span ended; the zero time if still open.
func (s *Span) EndTime() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.end
}

// Duration returns end-start, or 0 while the span is open.
func (s *Span) Duration() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.end.IsZero() {
		return 0
	}
	return s.end.Sub(s.start)
}

// Tracer returns the tracer that created the span.
func (s *Span) Tracer() *Tracer { return s.tracer }

// Child begins a sub-span starting now.
func (s *Span) Child(name string) *Span {
	return s.ChildAt(name, s.tracer.now())
}

// ChildAt begins a sub-span with an explicit start time. Event-driven
// instrumentation uses this to open spans retroactively: solver events
// arrive after the work they describe, so the caller passes the previous
// event's timestamp as the start.
func (s *Span) ChildAt(name string, start time.Time) *Span {
	c := &Span{
		tracer: s.tracer,
		id:     s.tracer.ids.Add(1),
		parent: s.id,
		name:   name,
		start:  start,
	}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// End closes the span now. Ending an already-ended span is a no-op.
func (s *Span) End() { s.EndAt(s.tracer.now()) }

// EndAt closes the span at an explicit time. Ending an already-ended span
// is a no-op.
func (s *Span) EndAt(t time.Time) {
	s.mu.Lock()
	if s.end.IsZero() {
		s.end = t
	}
	s.mu.Unlock()
}

// SetAttr records an integer annotation.
func (s *Span) SetAttr(key string, v int64) {
	s.SetAttrStr(key, fmt.Sprintf("%d", v))
}

// SetAttrStr records a string annotation.
func (s *Span) SetAttrStr(key, value string) {
	s.mu.Lock()
	s.attrs = append(s.attrs, SpanAttr{Key: key, Value: value})
	s.mu.Unlock()
}

// Attrs returns a copy of the span's annotations.
func (s *Span) Attrs() []SpanAttr {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]SpanAttr(nil), s.attrs...)
}

// Children returns a copy of the span's direct children in creation order.
func (s *Span) Children() []*Span {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

// Walk visits the span and every descendant depth-first in creation order.
func (s *Span) Walk(fn func(*Span)) {
	fn(s)
	for _, c := range s.Children() {
		c.Walk(fn)
	}
}

// SpanNode is the JSON tree shape of a finished span, used by the minupd
// /trace endpoint and anywhere a serializable copy of the tree is needed.
type SpanNode struct {
	ID         uint64     `json:"id"`
	ParentID   uint64     `json:"parent_id,omitempty"`
	Name       string     `json:"name"`
	StartUS    int64      `json:"start_us"`
	DurationUS int64      `json:"duration_us"`
	Attrs      []SpanAttr `json:"attrs,omitempty"`
	Children   []SpanNode `json:"children,omitempty"`
}

// Node converts the span tree to its JSON shape. Timestamps are microseconds
// relative to epoch; epoch is typically the root span's start so exported
// trees begin at 0.
func (s *Span) Node(epoch time.Time) SpanNode {
	s.mu.Lock()
	n := SpanNode{
		ID:       s.id,
		ParentID: s.parent,
		Name:     s.name,
		StartUS:  s.start.Sub(epoch).Microseconds(),
		Attrs:    append([]SpanAttr(nil), s.attrs...),
	}
	if !s.end.IsZero() {
		n.DurationUS = s.end.Sub(s.start).Microseconds()
	}
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range children {
		n.Children = append(n.Children, c.Node(epoch))
	}
	return n
}

// spanKey is the context key for the active span.
type spanKey struct{}

// ContextWithSpan returns a context carrying sp as the active span.
func ContextWithSpan(ctx context.Context, sp *Span) context.Context {
	return context.WithValue(ctx, spanKey{}, sp)
}

// SpanFromContext returns the active span, or nil when the context is
// uninstrumented. Callers must nil-check: the nil return is the zero-cost
// path.
func SpanFromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(spanKey{}).(*Span)
	return sp
}
