package obs

import "sync/atomic"

// Gauge is an instantaneous signed value (in-flight requests, pool sizes,
// queue depths). Unlike Counter it can go down and can be set outright. The
// zero value is ready to use; all methods are single atomic operations and
// safe for concurrent use.
type Gauge struct {
	v atomic.Int64
}

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Add adds n (n may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Sub subtracts n.
func (g *Gauge) Sub(n int64) { g.v.Add(-n) }

// Set replaces the current value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }
