package obs

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestFlightRingBounded(t *testing.T) {
	const size = 8
	f := NewFlightRecorder(FlightOptions{Size: size})
	const n = 10 * size
	for i := 0; i < n; i++ {
		a := f.Begin("solve", "GET", fmt.Sprintf("req-%d", i))
		f.End(a, FlightRecord{Status: 200, DurationUS: int64(i)})
	}
	snap := f.Snapshot()
	if snap.Total != n {
		t.Fatalf("total = %d, want %d", snap.Total, n)
	}
	if len(snap.Recent) != size {
		t.Fatalf("recent ring holds %d records, want exactly %d", len(snap.Recent), size)
	}
	// Newest-first: the last End wins the front slot.
	if snap.Recent[0].ID != fmt.Sprintf("req-%d", n-1) {
		t.Fatalf("newest record id = %q", snap.Recent[0].ID)
	}
	if snap.Recent[size-1].ID != fmt.Sprintf("req-%d", n-size) {
		t.Fatalf("oldest surviving id = %q, want req-%d", snap.Recent[size-1].ID, n-size)
	}
	if len(snap.Active) != 0 {
		t.Fatalf("%d active flights after all ended", len(snap.Active))
	}
}

func TestFlightAnomalyRingSurvivesHealthyTraffic(t *testing.T) {
	f := NewFlightRecorder(FlightOptions{Size: 4, AnomalyKeep: 4})
	a := f.Begin("solve", "GET", "bad-one")
	f.End(a, FlightRecord{Status: 500, Err: "boom"})
	// A burst of healthy traffic laps the main ring several times over.
	for i := 0; i < 32; i++ {
		f.End(f.Begin("solve", "GET", "ok"), FlightRecord{Status: 200})
	}
	snap := f.Snapshot()
	for _, rec := range snap.Recent {
		if rec.ID == "bad-one" {
			t.Fatal("anomaly unexpectedly survived in the lapped main ring")
		}
	}
	if len(snap.RecentAnomalies) != 1 || snap.RecentAnomalies[0].ID != "bad-one" {
		t.Fatalf("anomaly ring = %+v, want the one 500", snap.RecentAnomalies)
	}
	if snap.AnomalyTotal != 1 {
		t.Fatalf("anomaly total = %d, want 1", snap.AnomalyTotal)
	}
}

func TestFlightAnomalyTriggers(t *testing.T) {
	f := NewFlightRecorder(FlightOptions{SlowThreshold: time.Millisecond})
	cases := []struct {
		name string
		rec  FlightRecord
		want bool
	}{
		{"healthy", FlightRecord{Status: 200}, false},
		{"client error", FlightRecord{Status: 404}, false},
		{"server error", FlightRecord{Status: 500}, true},
		{"explicit err", FlightRecord{Status: 200, Err: "x"}, true},
		{"degraded", FlightRecord{Status: 200, Degraded: true}, true},
		{"panicked", FlightRecord{Status: 500, Panicked: true}, true},
		{"slow", FlightRecord{Status: 200, DurationUS: 2000}, true},
		{"failed refresh", FlightRecord{Outcome: "failed"}, true},
		{"panic refresh", FlightRecord{Outcome: "panic"}, true},
		{"completed refresh", FlightRecord{Outcome: "completed"}, false},
		// Shedding is the designed overload posture, never an anomaly — even
		// though the client saw a 503.
		{"shed", FlightRecord{Status: 503, Shed: true, Err: "wait queue full"}, false},
	}
	for _, tc := range cases {
		if got := f.isAnomaly(&tc.rec); got != tc.want {
			t.Errorf("%s: isAnomaly = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestFlightDumpWriteAndCapture(t *testing.T) {
	dir := t.TempDir()
	f := NewFlightRecorder(FlightOptions{DumpDir: dir, CaptureEvents: 2})
	a := f.Begin("solve", "GET", "req-1")
	sink := a.CaptureSink()
	sink.Event(Event{Kind: EventTry, Attr: 1, Level: 3})
	sink.Event(Event{Kind: EventAssign, Attr: 1, Level: 2})
	sink.Event(Event{Kind: EventCollapse, Attr: 2}) // over CaptureEvents: truncated
	f.End(a, FlightRecord{Status: 200, Degraded: true, DegradeReason: "deadline"})

	snap := f.Snapshot()
	if snap.DumpsWritten != 1 {
		t.Fatalf("dumps written = %d, want 1", snap.DumpsWritten)
	}
	if len(snap.RecentAnomalies) != 1 || snap.RecentAnomalies[0].Dump == "" {
		t.Fatalf("anomaly record carries no dump name: %+v", snap.RecentAnomalies)
	}
	data, err := os.ReadFile(filepath.Join(dir, snap.RecentAnomalies[0].Dump))
	if err != nil {
		t.Fatal(err)
	}
	var dump struct {
		TraceEvents     []json.RawMessage `json:"traceEvents"`
		Record          FlightRecord      `json:"record"`
		TruncatedEvents int               `json:"truncated_events"`
	}
	if err := json.Unmarshal(data, &dump); err != nil {
		t.Fatalf("dump is not valid JSON: %v", err)
	}
	// Metadata + request slice + 2 captured solver events.
	if len(dump.TraceEvents) != 4 {
		t.Fatalf("traceEvents = %d entries, want 4", len(dump.TraceEvents))
	}
	if dump.Record.ID != "req-1" || !dump.Record.Degraded {
		t.Fatalf("dump record = %+v", dump.Record)
	}
	if dump.TruncatedEvents != 1 {
		t.Fatalf("truncated_events = %d, want 1", dump.TruncatedEvents)
	}
}

func TestFlightDumpRotationByteCap(t *testing.T) {
	dir := t.TempDir()
	// Each dump carries a ~2 KiB error string, so a handful blow the cap.
	f := NewFlightRecorder(FlightOptions{DumpDir: dir, DumpCapBytes: 8 << 10})
	bigErr := strings.Repeat("x", 2<<10)
	for i := 0; i < 12; i++ {
		f.Record(FlightRecord{Kind: "refresh", Route: "catalog.refresh", Outcome: "failed", Err: bigErr})
	}
	snap := f.Snapshot()
	if snap.DumpsWritten != 12 {
		t.Fatalf("dumps written = %d, want 12", snap.DumpsWritten)
	}
	if snap.DumpsPruned == 0 {
		t.Fatal("no dumps pruned despite blowing the byte cap")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		info, err := e.Info()
		if err != nil {
			t.Fatal(err)
		}
		total += info.Size()
		names = append(names, e.Name())
	}
	if len(names) == 0 {
		t.Fatal("rotation deleted every dump; the newest must survive")
	}
	if total > 8<<10 && len(names) > 1 {
		t.Fatalf("dump dir holds %d bytes across %v, over the 8 KiB cap", total, names)
	}
	// The newest dump (highest seq suffix) must be among the survivors.
	newest := snap.RecentAnomalies[0].Dump
	found := false
	for _, n := range names {
		if n == newest {
			found = true
		}
	}
	if !found {
		t.Fatalf("newest dump %s not among survivors %v", newest, names)
	}
}

func TestFlightRefreshRecord(t *testing.T) {
	f := NewFlightRecorder(FlightOptions{})
	f.Record(FlightRecord{
		Kind: "refresh", Route: "catalog.refresh",
		Policy: "p", Shard: 3, Version: 7, Outcome: "completed", DurationUS: 42,
	})
	snap := f.Snapshot()
	if len(snap.Recent) != 1 {
		t.Fatalf("recent = %d records", len(snap.Recent))
	}
	rec := snap.Recent[0]
	if rec.Kind != "refresh" || rec.Policy != "p" || rec.Shard != 3 || rec.Version != 7 {
		t.Fatalf("refresh record = %+v", rec)
	}
	if rec.Seq == 0 || rec.Start.IsZero() {
		t.Fatalf("identity fields not filled: %+v", rec)
	}
	if rl, ok := snap.Routes["catalog.refresh"]; !ok || rl.Count != 1 {
		t.Fatalf("route latency missing for refresh: %+v", snap.Routes)
	}
}

func TestFlightServeHTTP(t *testing.T) {
	f := NewFlightRecorder(FlightOptions{SLO: NewSLOTracker(SLOSpec{Route: "solve", P99: time.Second, Availability: 0.999})})
	f.End(f.Begin("solve", "GET", "ok-req"), FlightRecord{Status: 200})
	f.End(f.Begin("solve", "GET", "bad-req"), FlightRecord{Status: 500, Err: "exploded"})

	rec := httptest.NewRecorder()
	f.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/requests", nil))
	body := rec.Body.String()
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Fatalf("Content-Type = %q", ct)
	}
	for _, want := range []string{"ok-req", "bad-req", "exploded", "Recent anomalies", "SLOs"} {
		if !strings.Contains(body, want) {
			t.Errorf("HTML missing %q", want)
		}
	}

	rec = httptest.NewRecorder()
	f.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/requests?format=json", nil))
	var out struct {
		FlightSnapshot
		SLO []SLOStatus `json:"slo"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("JSON view: %v", err)
	}
	if out.Total != 2 || len(out.RecentAnomalies) != 1 {
		t.Fatalf("JSON snapshot total=%d anomalies=%d", out.Total, len(out.RecentAnomalies))
	}
	if len(out.SLO) != 1 || out.SLO[0].Route != "solve" {
		t.Fatalf("JSON SLO block = %+v", out.SLO)
	}
}

// TestFlightConcurrent hammers Begin/End/Record/Snapshot from many
// goroutines under -race: the ring stays bounded and nothing tears.
func TestFlightConcurrent(t *testing.T) {
	f := NewFlightRecorder(FlightOptions{Size: 32})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				a := f.Begin("solve", "GET", fmt.Sprintf("w%d-%d", w, i))
				sink := a.CaptureSink()
				sink.Event(Event{Kind: EventTry})
				f.End(a, FlightRecord{Status: 200})
				if i%50 == 0 {
					f.Record(FlightRecord{Kind: "refresh", Route: "catalog.refresh", Outcome: "completed"})
				}
			}
		}(w)
	}
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				snap := f.Snapshot()
				if len(snap.Recent) > 32 {
					t.Errorf("ring grew to %d records", len(snap.Recent))
					return
				}
			}
		}()
	}
	wg.Wait()
	if snap := f.Snapshot(); snap.Total != 8*200+8*4 {
		t.Fatalf("total = %d, want %d", snap.Total, 8*200+8*4)
	}
}
