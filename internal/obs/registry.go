package obs

import (
	"encoding/json"
	"expvar"
	"io"
	"sync"
)

// Registry is a named collection of counters and histograms that snapshots
// to a stable JSON shape. Get-or-create lookups are guarded by a read-write
// mutex; the metrics themselves are lock-free atomics, so concurrent solves
// recording into one registry never contend beyond the name lookup.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	infos    map[string]map[string]string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		infos:    make(map[string]map[string]string),
	}
}

// Info registers an info-style metric: a constant gauge of value 1 whose
// payload is its label set, the Prometheus idiom for build/version
// identity (`build_info{version="...",go_version="..."} 1`). The labels
// are copied; calling again replaces the previous set. Load reports and
// dashboards read the labels to identify the exact process under test.
func (r *Registry) Info(name string, labels map[string]string) {
	cp := make(map[string]string, len(labels))
	for k, v := range labels {
		cp[k] = v
	}
	r.mu.Lock()
	r.infos[name] = cp
	r.mu.Unlock()
}

// Counter returns the counter registered under name, creating it on first
// use. Safe for concurrent use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
// Safe for concurrent use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it with
// the given bounds on first use. Later calls ignore bounds and return the
// existing histogram, so callers may pass the canonical bounds on every
// call.
func (r *Registry) Histogram(name string, bounds []uint64) *Histogram {
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = NewHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// LookupHistogram returns the histogram registered under name, or nil when
// none exists — unlike Histogram it never creates, so samplers can probe
// for series (e.g. wal.fsync.duration_us) that only exist in some
// configurations.
func (r *Registry) LookupHistogram(name string) *Histogram {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.hists[name]
}

// Snapshot is the stable JSON shape of a registry: counters and histograms
// keyed by name. encoding/json sorts map keys, so the serialized form is
// deterministic for a given set of metric values.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
	Infos      map[string]map[string]string `json:"infos,omitempty"`
}

// Snapshot captures the current value of every registered metric.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Counters:   make(map[string]uint64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot()
	}
	if len(r.infos) > 0 {
		s.Infos = make(map[string]map[string]string, len(r.infos))
		for name, labels := range r.infos {
			cp := make(map[string]string, len(labels))
			for k, v := range labels {
				cp[k] = v
			}
			s.Infos[name] = cp
		}
	}
	return s
}

// WriteJSON writes the registry snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// Publish registers the live registry under name in the process-wide expvar
// namespace, so /debug/vars on the debug listener reports the snapshot
// alongside the runtime's memstats. Like expvar.Publish, it panics if the
// name is already taken — call once per process.
func (r *Registry) Publish(name string) {
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}
