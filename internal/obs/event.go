package obs

// EventKind classifies one solver step.
type EventKind uint8

const (
	// EventAssign reports an attribute labeled directly by back-propagation
	// (the lub of its definitively labeled constraints).
	EventAssign EventKind = iota
	// EventTry reports a successful Try call: the attribute was lowered to
	// the event's level. The individual lowerings the call propagated
	// through the cycle follow as EventLower events.
	EventTry
	// EventTryFailed reports a Try call rejected because a constraint with
	// a definitively labeled right-hand side would break (the paper's "F"
	// marker). No assignment change follows.
	EventTryFailed
	// EventLower reports one attribute lowered as part of the immediately
	// preceding EventTry's propagation (including the tried attribute
	// itself).
	EventLower
	// EventCollapse reports an attribute pinned by the §3.2 simple-cycle
	// collapse.
	EventCollapse
	// EventDone reports an attribute's forward lowering completed (its
	// level is final).
	EventDone
	// EventTryStep reports one constraint check inside a Try call's
	// minlevel descent — the finest-grained unit of solver work, matching
	// Stats.TrySteps. Emitted only when a sink is attached, like every
	// other kind.
	EventTryStep

	numEventKinds = int(EventTryStep) + 1
)

// String returns the kind's canonical short name, used as the counter
// suffix by CountingSink.
func (k EventKind) String() string {
	switch k {
	case EventAssign:
		return "assign"
	case EventTry:
		return "try"
	case EventTryFailed:
		return "try_failed"
	case EventLower:
		return "lower"
	case EventCollapse:
		return "collapse"
	case EventDone:
		return "done"
	case EventTryStep:
		return "try_step"
	}
	return "unknown"
}

// Event is one solver step, passed to sinks by value so that streaming
// events performs no allocation. Fields are plain integers: Attr is the
// dense attribute index of the solve's constraint set, Level is the opaque
// lattice level handle after the step, and SCC is the §4 priority (one per
// strongly connected component) of the attribute, or -1 when no attribute
// is involved.
type Event struct {
	Kind  EventKind
	Attr  int32
	Level uint64
	SCC   int32
}

// EventSink receives the solver's event stream. Implementations must be
// cheap — they run inside the solve loop — and must be safe for concurrent
// use if the sink is attached to a compiled snapshot that is solved from
// several goroutines. A sink must not block.
type EventSink interface {
	Event(Event)
}

// SinkFunc adapts a function to the EventSink interface.
type SinkFunc func(Event)

// Event calls f(e).
func (f SinkFunc) Event(e Event) { f(e) }

// CountingSink is an EventSink that tallies events by kind into registry
// counters named <prefix>.<kind> (e.g. "solver.events.try_failed"). It
// resolves the counters once at construction, so each event costs one
// atomic add and no allocation; it is safe for concurrent use.
type CountingSink struct {
	byKind [numEventKinds]*Counter
}

// NewCountingSink registers one counter per event kind under prefix in r.
func NewCountingSink(r *Registry, prefix string) *CountingSink {
	s := &CountingSink{}
	for k := 0; k < numEventKinds; k++ {
		s.byKind[k] = r.Counter(prefix + "." + EventKind(k).String())
	}
	return s
}

// Event counts the event.
func (s *CountingSink) Event(e Event) {
	if int(e.Kind) < len(s.byKind) {
		s.byKind[e.Kind].Inc()
	}
}

// TeeSink fans one event stream out to several sinks, in order.
type TeeSink []EventSink

// Event forwards e to every sink.
func (t TeeSink) Event(e Event) {
	for _, s := range t {
		s.Event(e)
	}
}
