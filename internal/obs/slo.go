// SLO tracking: per-route objectives (p99 latency, availability) and
// multi-window burn rates over bucketed circular time windows. A burn rate
// of 1.0 means the route is consuming its error budget exactly as fast as
// the objective allows; sustained rates above ~1 on the short window are
// the page-worthy signal (the classic 5m/1h multi-window alert pair).
package obs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// SLO window geometry: 10-second buckets, enough of them to cover the long
// (1h) window plus one spare so a partially filled current bucket never
// aliases the oldest one.
const (
	sloBucketSeconds = 10
	sloBucketCount   = 3600/sloBucketSeconds + 1
	sloShortWindow   = 5 * time.Minute
	sloLongWindow    = time.Hour
	// sloLatencyBudget is the slow-request budget implied by a p99 target:
	// 1% of requests may exceed it.
	sloLatencyBudget = 0.01
)

// SLOSpec is one route's objectives. Zero fields disable that objective.
type SLOSpec struct {
	Route string `json:"route"`
	// P99 is the latency target: at most 1% of requests may take longer.
	P99 time.Duration `json:"p99_us"`
	// Availability is the success-fraction target in (0,1), e.g. 0.999.
	Availability float64 `json:"availability"`
}

// ParseSLOSpecs parses the -slo flag grammar: semicolon-separated
// "route:key=value,key=value" entries with keys p99 (a Go duration) and
// avail (a percentage, e.g. 99.9).
//
//	solve:p99=100ms,avail=99.9;policy.solve:p99=50ms,avail=99.99
func ParseSLOSpecs(s string) ([]SLOSpec, error) {
	var specs []SLOSpec
	for _, entry := range strings.Split(s, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		route, rest, ok := strings.Cut(entry, ":")
		if !ok || route == "" {
			return nil, fmt.Errorf("obs: SLO entry %q: want route:key=value,...", entry)
		}
		spec := SLOSpec{Route: route}
		for _, kv := range strings.Split(rest, ",") {
			key, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
			if !ok {
				return nil, fmt.Errorf("obs: SLO entry %q: bad objective %q", entry, kv)
			}
			switch key {
			case "p99":
				d, err := time.ParseDuration(val)
				if err != nil || d <= 0 {
					return nil, fmt.Errorf("obs: SLO entry %q: bad p99 %q", entry, val)
				}
				spec.P99 = d
			case "avail":
				pct, err := strconv.ParseFloat(val, 64)
				if err != nil || pct <= 0 || pct >= 100 {
					return nil, fmt.Errorf("obs: SLO entry %q: avail wants a percentage in (0,100), got %q", entry, val)
				}
				spec.Availability = pct / 100
			default:
				return nil, fmt.Errorf("obs: SLO entry %q: unknown objective %q (want p99 or avail)", entry, key)
			}
		}
		if spec.P99 == 0 && spec.Availability == 0 {
			return nil, fmt.Errorf("obs: SLO entry %q: no objectives", entry)
		}
		specs = append(specs, spec)
	}
	return specs, nil
}

// sloBucket is one 10-second slice of a route's traffic. epoch identifies
// which wall-clock slice the bucket currently holds; a bucket whose epoch
// has lapped is reset before reuse.
type sloBucket struct {
	epoch int64
	total uint64
	bad   uint64
	slow  uint64
}

type routeSLO struct {
	spec    SLOSpec
	buckets [sloBucketCount]sloBucket
}

// SLOTracker records per-route request outcomes and computes burn rates.
// Construct with NewSLOTracker; safe for concurrent use. Routes without a
// spec are ignored at record time, so the hot path for untracked routes is
// one map lookup.
type SLOTracker struct {
	// Now replaces time.Now for bucket assignment (tests).
	Now func() time.Time

	mu     sync.Mutex
	routes map[string]*routeSLO
	order  []string
}

// NewSLOTracker builds a tracker for the given objectives.
func NewSLOTracker(specs ...SLOSpec) *SLOTracker {
	t := &SLOTracker{routes: make(map[string]*routeSLO, len(specs))}
	for _, spec := range specs {
		if _, dup := t.routes[spec.Route]; dup {
			continue
		}
		t.routes[spec.Route] = &routeSLO{spec: spec}
		t.order = append(t.order, spec.Route)
	}
	sort.Strings(t.order)
	return t
}

func (t *SLOTracker) now() time.Time {
	if t.Now != nil {
		return t.Now()
	}
	return time.Now()
}

// Record counts one request against its route's objectives: bad burns the
// availability budget, a duration past the p99 target burns the latency
// budget. A nil tracker or an untracked route is a cheap no-op.
func (t *SLOTracker) Record(route string, dur time.Duration, bad bool) {
	if t == nil {
		return
	}
	epoch := t.now().Unix() / sloBucketSeconds
	t.mu.Lock()
	rs := t.routes[route]
	if rs == nil {
		t.mu.Unlock()
		return
	}
	b := &rs.buckets[epoch%sloBucketCount]
	if b.epoch != epoch {
		*b = sloBucket{epoch: epoch}
	}
	b.total++
	if bad {
		b.bad++
	}
	if rs.spec.P99 > 0 && dur > rs.spec.P99 {
		b.slow++
	}
	t.mu.Unlock()
}

// SLOStatus is one route's burn-rate readout across both windows.
type SLOStatus struct {
	Route        string  `json:"route"`
	P99TargetUS  uint64  `json:"p99_target_us,omitempty"`
	Availability float64 `json:"availability,omitempty"`

	Requests5m uint64 `json:"requests_5m"`
	Requests1h uint64 `json:"requests_1h"`

	// AvailBurn* is (bad fraction)/(1 - availability target); 1.0 burns
	// the availability budget exactly at the sustainable rate.
	AvailBurn5m float64 `json:"avail_burn_5m"`
	AvailBurn1h float64 `json:"avail_burn_1h"`
	// LatencyBurn* is (slow fraction)/1%: the p99 objective's budget.
	LatencyBurn5m float64 `json:"latency_burn_5m"`
	LatencyBurn1h float64 `json:"latency_burn_1h"`
}

// Status computes every route's burn rates, sorted by route name.
func (t *SLOTracker) Status() []SLOStatus {
	if t == nil {
		return nil
	}
	nowEpoch := t.now().Unix() / sloBucketSeconds
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SLOStatus, 0, len(t.order))
	for _, route := range t.order {
		rs := t.routes[route]
		st := SLOStatus{
			Route:        route,
			P99TargetUS:  uint64(rs.spec.P99.Microseconds()),
			Availability: rs.spec.Availability,
		}
		shortT, shortBad, shortSlow := windowSums(rs, nowEpoch, int64(sloShortWindow/(sloBucketSeconds*time.Second)))
		longT, longBad, longSlow := windowSums(rs, nowEpoch, int64(sloLongWindow/(sloBucketSeconds*time.Second)))
		st.Requests5m, st.Requests1h = shortT, longT
		if rs.spec.Availability > 0 {
			budget := 1 - rs.spec.Availability
			st.AvailBurn5m = burnRate(shortBad, shortT, budget)
			st.AvailBurn1h = burnRate(longBad, longT, budget)
		}
		if rs.spec.P99 > 0 {
			st.LatencyBurn5m = burnRate(shortSlow, shortT, sloLatencyBudget)
			st.LatencyBurn1h = burnRate(longSlow, longT, sloLatencyBudget)
		}
		out = append(out, st)
	}
	return out
}

// windowSums totals the buckets of the last n epochs (including the
// current, possibly partial, one). Caller holds t.mu.
func windowSums(rs *routeSLO, nowEpoch, n int64) (total, bad, slow uint64) {
	for i := range rs.buckets {
		b := &rs.buckets[i]
		if b.epoch > nowEpoch-n && b.epoch <= nowEpoch {
			total += b.total
			bad += b.bad
			slow += b.slow
		}
	}
	return
}

// burnRate is (bad/total)/budget, 0 on an empty window.
func burnRate(bad, total uint64, budget float64) float64 {
	if total == 0 || budget <= 0 {
		return 0
	}
	return float64(bad) / float64(total) / budget
}

// Publish writes every route's burn rates into reg as gauges in milli-units
// (the registry's gauges are integers): slo.<route>.avail_burn_5m_milli and
// friends. Registered routes publish even at zero, so a scrape sees the
// series before the first failure.
func (t *SLOTracker) Publish(reg *Registry) {
	if t == nil || reg == nil {
		return
	}
	for _, st := range t.Status() {
		prefix := "slo." + st.Route + "."
		if st.Availability > 0 {
			reg.Gauge(prefix + "avail_burn_5m_milli").Set(milli(st.AvailBurn5m))
			reg.Gauge(prefix + "avail_burn_1h_milli").Set(milli(st.AvailBurn1h))
		}
		if st.P99TargetUS > 0 {
			reg.Gauge(prefix + "latency_burn_5m_milli").Set(milli(st.LatencyBurn5m))
			reg.Gauge(prefix + "latency_burn_1h_milli").Set(milli(st.LatencyBurn1h))
		}
	}
}

// milli converts a burn rate to integer milli-units, saturating instead of
// overflowing on pathological rates.
func milli(v float64) int64 {
	m := math.Round(v * 1000)
	if m > math.MaxInt64 {
		return math.MaxInt64
	}
	return int64(m)
}
