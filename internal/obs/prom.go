package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// sanitizeMetricName maps a registry name to a legal Prometheus metric name:
// [a-zA-Z_:][a-zA-Z0-9_:]*. The registry's dotted names ("solve.duration_us")
// become underscore-separated ("solve_duration_us"); any other illegal rune
// also becomes an underscore, and a leading digit gets one prepended.
func sanitizeMetricName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			b.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

// escapeLabelValue escapes a label value per the text exposition format:
// backslash, double quote, and newline.
func escapeLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// WritePrometheus writes the registry in the Prometheus text exposition
// format (version 0.0.4): counters and gauges as single samples, histograms
// as cumulative `_bucket{le="..."}` series plus `_sum` and `_count`, and
// info metrics as constant-1 gauges carrying their labels (sorted by label
// name). Output is sorted by sanitized metric name, so it is deterministic
// for a given set of metric values. Registry bucket counts are per-bucket;
// this writer cumulates them, and the implicit overflow bucket becomes
// le="+Inf".
func (r *Registry) WritePrometheus(w io.Writer) error {
	s := r.Snapshot()

	type sample struct {
		typ  string // "counter", "gauge", "histogram"
		emit func(io.Writer, string) error
	}
	byName := make(map[string]sample, len(s.Counters)+len(s.Gauges)+len(s.Histograms))

	for name, v := range s.Counters {
		v := v
		byName[sanitizeMetricName(name)] = sample{
			typ: "counter",
			emit: func(w io.Writer, n string) error {
				_, err := fmt.Fprintf(w, "%s %d\n", n, v)
				return err
			},
		}
	}
	for name, v := range s.Gauges {
		v := v
		byName[sanitizeMetricName(name)] = sample{
			typ: "gauge",
			emit: func(w io.Writer, n string) error {
				_, err := fmt.Fprintf(w, "%s %d\n", n, v)
				return err
			},
		}
	}
	for name, labels := range s.Infos {
		labels := labels
		byName[sanitizeMetricName(name)] = sample{
			typ: "gauge",
			emit: func(w io.Writer, n string) error {
				keys := make([]string, 0, len(labels))
				for k := range labels {
					keys = append(keys, k)
				}
				sort.Strings(keys)
				var b strings.Builder
				for i, k := range keys {
					if i > 0 {
						b.WriteByte(',')
					}
					fmt.Fprintf(&b, "%s=\"%s\"", sanitizeMetricName(k), escapeLabelValue(labels[k]))
				}
				_, err := fmt.Fprintf(w, "%s{%s} 1\n", n, b.String())
				return err
			},
		}
	}
	for name, h := range s.Histograms {
		h := h
		byName[sanitizeMetricName(name)] = sample{
			typ: "histogram",
			emit: func(w io.Writer, n string) error {
				var cum uint64
				for i, bound := range h.Bounds {
					cum += h.Counts[i]
					le := escapeLabelValue(strconv.FormatUint(bound, 10))
					if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", n, le, cum); err != nil {
						return err
					}
				}
				cum += h.Counts[len(h.Bounds)] // implicit overflow bucket
				if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", n, cum); err != nil {
					return err
				}
				if _, err := fmt.Fprintf(w, "%s_sum %d\n", n, h.Sum); err != nil {
					return err
				}
				_, err := fmt.Fprintf(w, "%s_count %d\n", n, h.Count)
				return err
			},
		}
	}

	names := make([]string, 0, len(byName))
	for n := range byName {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		sm := byName[n]
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", n, sm.typ); err != nil {
			return err
		}
		if err := sm.emit(w, n); err != nil {
			return err
		}
	}
	return nil
}
