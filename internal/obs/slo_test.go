package obs

import (
	"testing"
	"time"
)

func TestParseSLOSpecs(t *testing.T) {
	specs, err := ParseSLOSpecs("solve:p99=100ms,avail=99.9; policy.solve:avail=99.99 ;")
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 {
		t.Fatalf("parsed %d specs, want 2", len(specs))
	}
	near := func(got, want float64) bool { return got > want-1e-9 && got < want+1e-9 }
	if specs[0].Route != "solve" || specs[0].P99 != 100*time.Millisecond || !near(specs[0].Availability, 0.999) {
		t.Fatalf("spec[0] = %+v", specs[0])
	}
	if specs[1].Route != "policy.solve" || specs[1].P99 != 0 || !near(specs[1].Availability, 0.9999) {
		t.Fatalf("spec[1] = %+v", specs[1])
	}

	for _, bad := range []string{
		"noroute",          // no colon
		":p99=1s",          // empty route
		"solve:p99",        // no value
		"solve:p99=banana", // bad duration
		"solve:p99=-1s",    // non-positive duration
		"solve:avail=100",  // availability must be < 100
		"solve:avail=0",    // and > 0
		"solve:latency=1s", // unknown key
		"solve:",           // no objectives
	} {
		if _, err := ParseSLOSpecs(bad); err == nil {
			t.Errorf("ParseSLOSpecs(%q) accepted", bad)
		}
	}
	if specs, err := ParseSLOSpecs(""); err != nil || specs != nil {
		t.Fatalf("empty spec = %v, %v", specs, err)
	}
}

func TestSLOBurnRates(t *testing.T) {
	now := time.Unix(1_000_000, 0)
	tr := NewSLOTracker(SLOSpec{Route: "solve", P99: 100 * time.Millisecond, Availability: 0.999})
	tr.Now = func() time.Time { return now }

	// 1000 requests: 10 bad, 20 slow. Bad fraction 1% against a 0.1% budget
	// → availability burn 10×. Slow fraction 2% against the 1% p99 budget
	// → latency burn 2×.
	for i := 0; i < 1000; i++ {
		dur := 10 * time.Millisecond
		if i < 20 {
			dur = 200 * time.Millisecond
		}
		tr.Record("solve", dur, i < 10)
	}
	tr.Record("untracked", time.Second, true) // no spec: ignored

	st := tr.Status()
	if len(st) != 1 {
		t.Fatalf("status = %+v", st)
	}
	s := st[0]
	if s.Requests5m != 1000 || s.Requests1h != 1000 {
		t.Fatalf("requests 5m=%d 1h=%d, want 1000", s.Requests5m, s.Requests1h)
	}
	if got := s.AvailBurn5m; got < 9.99 || got > 10.01 {
		t.Fatalf("avail burn 5m = %v, want 10", got)
	}
	if got := s.LatencyBurn5m; got < 1.99 || got > 2.01 {
		t.Fatalf("latency burn 5m = %v, want 2", got)
	}

	// 6 minutes later the short window is empty but the hour still sees it.
	now = now.Add(6 * time.Minute)
	s = tr.Status()[0]
	if s.Requests5m != 0 || s.AvailBurn5m != 0 {
		t.Fatalf("5m window after 6 minutes: req=%d burn=%v", s.Requests5m, s.AvailBurn5m)
	}
	if s.Requests1h != 1000 || s.AvailBurn1h < 9.99 {
		t.Fatalf("1h window after 6 minutes: req=%d burn=%v", s.Requests1h, s.AvailBurn1h)
	}

	// After the hour laps (and the buckets get reused for new epochs),
	// everything drains to zero.
	now = now.Add(time.Hour)
	s = tr.Status()[0]
	if s.Requests1h != 0 || s.AvailBurn1h != 0 || s.LatencyBurn1h != 0 {
		t.Fatalf("1h window after lap: %+v", s)
	}
}

func TestSLOBucketReuseAfterLap(t *testing.T) {
	now := time.Unix(500_000, 0)
	tr := NewSLOTracker(SLOSpec{Route: "r", Availability: 0.99})
	tr.Now = func() time.Time { return now }
	tr.Record("r", 0, true)
	// Exactly one full ring later the same bucket index comes around; its
	// stale epoch must be reset, not accumulated.
	now = now.Add(sloBucketCount * sloBucketSeconds * time.Second)
	tr.Record("r", 0, false)
	s := tr.Status()[0]
	if s.Requests1h != 1 || s.AvailBurn1h != 0 {
		t.Fatalf("lapped bucket leaked stale counts: %+v", s)
	}
}

func TestSLOPublishGauges(t *testing.T) {
	now := time.Unix(2_000_000, 0)
	tr := NewSLOTracker(SLOSpec{Route: "solve", P99: 100 * time.Millisecond, Availability: 0.999})
	tr.Now = func() time.Time { return now }
	reg := NewRegistry()

	// Publishing with no traffic still registers the series at zero.
	tr.Publish(reg)
	snap := reg.Snapshot()
	for _, name := range []string{
		"slo.solve.avail_burn_5m_milli", "slo.solve.avail_burn_1h_milli",
		"slo.solve.latency_burn_5m_milli", "slo.solve.latency_burn_1h_milli",
	} {
		if v, ok := snap.Gauges[name]; !ok || v != 0 {
			t.Errorf("pre-traffic gauge %s = %d, %v", name, v, ok)
		}
	}

	for i := 0; i < 100; i++ {
		tr.Record("solve", time.Millisecond, i == 0) // 1% bad → 10× burn
	}
	tr.Publish(reg)
	if got := reg.Snapshot().Gauges["slo.solve.avail_burn_5m_milli"]; got != 10000 {
		t.Fatalf("avail burn gauge = %d milli, want 10000", got)
	}

	// Nil receivers and registries are safe no-ops.
	var nilTr *SLOTracker
	nilTr.Record("solve", 0, true)
	nilTr.Publish(reg)
	if nilTr.Status() != nil {
		t.Fatal("nil tracker status not nil")
	}
	tr.Publish(nil)
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]uint64{10, 100, 1000})
	var empty HistogramSnapshot = h.Snapshot()
	if q := empty.Quantile(0.99); q != 0 {
		t.Fatalf("empty quantile = %d", q)
	}
	for i := 0; i < 98; i++ {
		h.Observe(5) // ≤10 bucket
	}
	h.Observe(50)   // ≤100
	h.Observe(5000) // overflow
	s := h.Snapshot()
	if q := s.Quantile(0.5); q != 10 {
		t.Fatalf("p50 = %d, want 10", q)
	}
	if q := s.Quantile(0.99); q != 100 {
		t.Fatalf("p99 = %d, want 100", q)
	}
	// The overflow bucket reports the last finite bound rather than
	// inventing a value.
	if q := s.Quantile(1.0); q != 1000 {
		t.Fatalf("p100 = %d, want 1000", q)
	}
	if q := s.Quantile(-1); q != 10 {
		t.Fatalf("clamped low quantile = %d, want 10", q)
	}
}
