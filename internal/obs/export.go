package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// chromeEvent is one entry of the Chrome trace-event format ("X" complete
// events plus "M" metadata). Field order is fixed by the struct, so the
// serialized form is deterministic.
type chromeEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	TS   int64             `json:"ts"`
	Dur  *int64            `json:"dur,omitempty"`
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace serializes the span trees as Chrome trace-event JSON,
// loadable in Perfetto (ui.perfetto.dev) or chrome://tracing. Each span
// becomes one "X" complete event; timestamps are microseconds relative to
// the earliest root span's start, so traces from a fake clock are stable.
// Every root is placed on its own tid so sibling traces stack instead of
// overlapping.
func WriteChromeTrace(w io.Writer, roots ...*Span) error {
	if len(roots) == 0 {
		return fmt.Errorf("obs: WriteChromeTrace needs at least one span")
	}
	epoch := roots[0].StartTime()
	for _, r := range roots[1:] {
		if r.StartTime().Before(epoch) {
			epoch = r.StartTime()
		}
	}
	out := chromeTrace{DisplayTimeUnit: "ms"}
	out.TraceEvents = append(out.TraceEvents, chromeEvent{
		Name: "process_name",
		Ph:   "M",
		PID:  1,
		Args: map[string]string{"name": "minup"},
	})
	for tid, root := range roots {
		traceID := root.Tracer().TraceID()
		root.Walk(func(s *Span) {
			end := s.EndTime()
			if end.IsZero() {
				end = s.StartTime() // open span exports as zero-width
			}
			dur := end.Sub(s.StartTime()).Microseconds()
			args := map[string]string{
				"span_id":  fmt.Sprintf("%d", s.ID()),
				"trace_id": traceID,
			}
			if p := s.ParentID(); p != 0 {
				args["parent_id"] = fmt.Sprintf("%d", p)
			}
			for _, a := range s.Attrs() {
				args[a.Key] = a.Value
			}
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: s.Name(),
				Ph:   "X",
				TS:   s.StartTime().Sub(epoch).Microseconds(),
				Dur:  &dur,
				PID:  1,
				TID:  tid + 1,
				Args: args,
			})
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// flameRow is one aggregated line of the flame summary.
type flameRow struct {
	name  string
	count int
	total time.Duration
}

// WriteFlameSummary writes a human-readable inverted-tree summary of one
// span tree: each line is a span (same-named siblings aggregated, with a
// ×N multiplier), indented by depth, with total duration and percentage of
// the root. Rows at each level are ordered by total duration descending,
// then name.
func WriteFlameSummary(w io.Writer, root *Span) error {
	rootDur := root.Duration()
	var emit func(depth int, spans []*Span) error
	emit = func(depth int, spans []*Span) error {
		// Aggregate same-named siblings, keeping one representative's
		// children per name (merged across the group).
		rows := make(map[string]*flameRow, len(spans))
		kids := make(map[string][]*Span, len(spans))
		order := make([]string, 0, len(spans))
		for _, s := range spans {
			r := rows[s.Name()]
			if r == nil {
				r = &flameRow{name: s.Name()}
				rows[s.Name()] = r
				order = append(order, s.Name())
			}
			r.count++
			r.total += s.Duration()
			kids[s.Name()] = append(kids[s.Name()], s.Children()...)
		}
		sort.SliceStable(order, func(i, j int) bool {
			a, b := rows[order[i]], rows[order[j]]
			if a.total != b.total {
				return a.total > b.total
			}
			return a.name < b.name
		})
		for _, name := range order {
			r := rows[name]
			label := r.name
			if r.count > 1 {
				label = fmt.Sprintf("%s ×%d", r.name, r.count)
			}
			pct := 100.0
			if rootDur > 0 {
				pct = 100 * float64(r.total) / float64(rootDur)
			}
			if _, err := fmt.Fprintf(w, "%s%-*s %12s %6.1f%%\n",
				strings.Repeat("  ", depth), 40-2*depth, label,
				r.total.Round(time.Microsecond), pct); err != nil {
				return err
			}
			if err := emit(depth+1, kids[name]); err != nil {
				return err
			}
		}
		return nil
	}
	return emit(0, []*Span{root})
}
