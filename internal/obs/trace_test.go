package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock returns a Now func that starts at a fixed epoch and advances
// one microsecond per call, making every span boundary distinct and
// deterministic.
func fakeClock() func() time.Time {
	t := time.Unix(1_000_000, 0)
	return func() time.Time {
		t = t.Add(time.Microsecond)
		return t
	}
}

func TestSpanTreeBasics(t *testing.T) {
	tr := &Tracer{Now: fakeClock()}
	root := tr.Start("root")
	if root.ID() == 0 || root.ParentID() != 0 {
		t.Fatalf("root span ids: id=%d parent=%d", root.ID(), root.ParentID())
	}
	a := root.Child("a")
	b := root.Child("b")
	if a.ParentID() != root.ID() || b.ParentID() != root.ID() {
		t.Fatalf("child parents: a=%d b=%d want %d", a.ParentID(), b.ParentID(), root.ID())
	}
	if a.ID() == b.ID() {
		t.Fatalf("sibling spans share id %d", a.ID())
	}
	a.SetAttr("n", 42)
	a.End()
	b.End()
	root.End()
	if root.Duration() <= 0 {
		t.Fatalf("root duration %v not positive", root.Duration())
	}
	kids := root.Children()
	if len(kids) != 2 || kids[0] != a || kids[1] != b {
		t.Fatalf("children not in creation order: %v", kids)
	}
	attrs := a.Attrs()
	if len(attrs) != 1 || attrs[0] != (SpanAttr{Key: "n", Value: "42"}) {
		t.Fatalf("attrs = %v", attrs)
	}
	var names []string
	root.Walk(func(s *Span) { names = append(names, s.Name()) })
	if got := strings.Join(names, ","); got != "root,a,b" {
		t.Fatalf("walk order %q", got)
	}
}

func TestSpanEndIdempotent(t *testing.T) {
	tr := &Tracer{Now: fakeClock()}
	sp := tr.Start("s")
	sp.End()
	end := sp.EndTime()
	sp.End()
	if sp.EndTime() != end {
		t.Fatal("second End moved the end time")
	}
}

func TestSpanContext(t *testing.T) {
	ctx := context.Background()
	if sp := SpanFromContext(ctx); sp != nil {
		t.Fatalf("uninstrumented context yields span %v", sp)
	}
	tr := &Tracer{Now: fakeClock()}
	root := tr.Start("root")
	ctx = ContextWithSpan(ctx, root)
	if sp := SpanFromContext(ctx); sp != root {
		t.Fatalf("got %v, want root", sp)
	}
}

func TestTracerConcurrentChildren(t *testing.T) {
	tr := NewTracer()
	root := tr.Start("root")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				c := root.Child("c")
				c.SetAttr("j", int64(j))
				c.End()
			}
		}()
	}
	wg.Wait()
	kids := root.Children()
	if len(kids) != 800 {
		t.Fatalf("got %d children, want 800", len(kids))
	}
	seen := make(map[uint64]bool, len(kids))
	for _, c := range kids {
		if seen[c.ID()] {
			t.Fatalf("duplicate span id %d", c.ID())
		}
		seen[c.ID()] = true
	}
}

func TestNewTracerDistinctTraceIDs(t *testing.T) {
	a, b := NewTracer(), NewTracer()
	if a.TraceID() == b.TraceID() {
		t.Fatalf("two NewTracer calls share trace id %s", a.TraceID())
	}
	if len(a.TraceID()) != 16 {
		t.Fatalf("trace id %q not 16 hex chars", a.TraceID())
	}
}

func TestWriteChromeTrace(t *testing.T) {
	tr := &Tracer{Now: fakeClock()}
	root := tr.Start("solve")
	scc := root.Child("scc 2")
	leaf := scc.Child("assign")
	leaf.SetAttrStr("attr", "B")
	leaf.End()
	scc.End()
	root.End()

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, root); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			TS   int64             `json:"ts"`
			Dur  int64             `json:"dur"`
			PID  int               `json:"pid"`
			TID  int               `json:"tid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("exporter output is not JSON: %v\n%s", err, buf.String())
	}
	// 1 metadata + 3 spans.
	if len(out.TraceEvents) != 4 {
		t.Fatalf("got %d events, want 4:\n%s", len(out.TraceEvents), buf.String())
	}
	if out.TraceEvents[0].Ph != "M" {
		t.Fatalf("first event is %q, want metadata", out.TraceEvents[0].Ph)
	}
	rootEv := out.TraceEvents[1]
	if rootEv.Name != "solve" || rootEv.Ph != "X" || rootEv.TS != 0 {
		t.Fatalf("root event %+v", rootEv)
	}
	leafEv := out.TraceEvents[3]
	if leafEv.Args["attr"] != "B" || leafEv.Args["parent_id"] == "" {
		t.Fatalf("leaf args %v", leafEv.Args)
	}
	for _, ev := range out.TraceEvents[1:] {
		if ev.Args["trace_id"] != tr.TraceID() {
			t.Fatalf("event %q trace_id %q, want %q", ev.Name, ev.Args["trace_id"], tr.TraceID())
		}
	}
}

func TestWriteChromeTraceMultipleRoots(t *testing.T) {
	clock := fakeClock()
	tr := &Tracer{Now: clock}
	a := tr.Start("a")
	a.End()
	b := tr.Start("b")
	b.End()
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, a, b); err != nil {
		t.Fatal(err)
	}
	// Roots land on distinct tids so the tracks stack.
	if !strings.Contains(buf.String(), `"tid": 1`) || !strings.Contains(buf.String(), `"tid": 2`) {
		t.Fatalf("roots share a tid:\n%s", buf.String())
	}
	if err := WriteChromeTrace(&buf); err == nil {
		t.Fatal("WriteChromeTrace with no spans did not fail")
	}
}

func TestWriteFlameSummary(t *testing.T) {
	tr := &Tracer{Now: fakeClock()}
	root := tr.Start("solve")
	for i := 0; i < 3; i++ {
		c := root.Child("scc 1")
		c.Child("descent").End()
		c.End()
	}
	root.End()
	var buf bytes.Buffer
	if err := WriteFlameSummary(&buf, root); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "solve") {
		t.Fatalf("summary missing root:\n%s", out)
	}
	if !strings.Contains(out, "scc 1 ×3") {
		t.Fatalf("summary did not aggregate same-named siblings:\n%s", out)
	}
	if !strings.Contains(out, "descent ×3") {
		t.Fatalf("summary did not merge grandchildren across siblings:\n%s", out)
	}
	if !strings.Contains(out, "100.0%") {
		t.Fatalf("summary missing root percentage:\n%s", out)
	}
}

func TestSpanNode(t *testing.T) {
	tr := &Tracer{Now: fakeClock()}
	root := tr.Start("r")
	c := root.Child("c")
	c.SetAttrStr("k", "v")
	c.End()
	root.End()
	n := root.Node(root.StartTime())
	if n.StartUS != 0 || n.Name != "r" || len(n.Children) != 1 {
		t.Fatalf("node %+v", n)
	}
	if n.DurationUS <= 0 {
		t.Fatalf("root duration_us %d", n.DurationUS)
	}
	child := n.Children[0]
	if child.ParentID != n.ID || child.Attrs[0].Value != "v" {
		t.Fatalf("child node %+v", child)
	}
	if _, err := json.Marshal(n); err != nil {
		t.Fatal(err)
	}
}
