package obs

import (
	"bufio"
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

func buildPromRegistry() *Registry {
	r := NewRegistry()
	r.Counter("solve.count").Add(7)
	r.Counter("solve.errors").Add(1)
	r.Gauge("http.in_flight").Set(3)
	r.Gauge("solve.pool.sessions").Set(-2) // gauges may go negative
	h := r.Histogram("solve.duration_us", []uint64{10, 100, 1000})
	for _, v := range []uint64{5, 5, 50, 500, 5000} {
		h.Observe(v)
	}
	// A name needing sanitization: dots and a dash become underscores.
	r.Counter("weird-name.with dots").Inc()
	return r
}

func TestWritePrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := buildPromRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "prom.golden")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("WritePrometheus drifted from %s (re-run with -update):\ngot:\n%swant:\n%s",
			golden, buf.String(), want)
	}
}

func TestWritePrometheusDeterministic(t *testing.T) {
	r := buildPromRegistry()
	var a, b bytes.Buffer
	if err := r.WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("two writes of the same registry differ")
	}
}

// promSample is one parsed text-format sample.
type promSample struct {
	name   string
	labels map[string]string
	value  float64
}

// parsePromText is a sanity-level parser for the subset of the text
// exposition format the writer emits: # TYPE comments and
// name{label="value"} value samples. It verifies the round trip, not full
// spec compliance.
func parsePromText(t *testing.T, in string) (types map[string]string, samples []promSample) {
	t.Helper()
	types = make(map[string]string)
	sc := bufio.NewScanner(strings.NewReader(in))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) != 4 || fields[1] != "TYPE" {
				t.Fatalf("malformed comment %q", line)
			}
			types[fields[2]] = fields[3]
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed sample %q", line)
		}
		value, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		s := promSample{labels: map[string]string{}, value: value}
		nameAndLabels := line[:sp]
		if i := strings.IndexByte(nameAndLabels, '{'); i >= 0 {
			s.name = nameAndLabels[:i]
			body := strings.TrimSuffix(nameAndLabels[i+1:], "}")
			for _, pair := range strings.Split(body, ",") {
				k, v, ok := strings.Cut(pair, "=")
				if !ok {
					t.Fatalf("bad label pair %q in %q", pair, line)
				}
				unq, err := strconv.Unquote(v)
				if err != nil {
					t.Fatalf("bad label value %s in %q: %v", v, line, err)
				}
				s.labels[k] = unq
			}
		} else {
			s.name = nameAndLabels
		}
		for _, r := range s.name {
			if !(r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' ||
				r >= '0' && r <= '9' || r == '_' || r == ':') {
				t.Fatalf("illegal rune %q in metric name %q", r, s.name)
			}
		}
		samples = append(samples, s)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return types, samples
}

func TestWritePrometheusRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := buildPromRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	types, samples := parsePromText(t, buf.String())

	if got := types["solve_count"]; got != "counter" {
		t.Fatalf("solve_count type %q", got)
	}
	if got := types["http_in_flight"]; got != "gauge" {
		t.Fatalf("http_in_flight type %q", got)
	}
	if got := types["solve_duration_us"]; got != "histogram" {
		t.Fatalf("solve_duration_us type %q", got)
	}
	if _, ok := types["weird_name_with_dots"]; !ok {
		t.Fatalf("sanitized name missing from types %v", types)
	}

	byKey := func(name, le string) (promSample, bool) {
		for _, s := range samples {
			if s.name == name && s.labels["le"] == le {
				return s, true
			}
		}
		return promSample{}, false
	}
	if s, ok := byKey("solve_count", ""); !ok || s.value != 7 {
		t.Fatalf("solve_count sample %+v ok=%v", s, ok)
	}
	if s, ok := byKey("solve_pool_sessions", ""); !ok || s.value != -2 {
		t.Fatalf("solve_pool_sessions sample %+v ok=%v", s, ok)
	}

	// Histogram series: buckets are cumulative, capped by +Inf == _count.
	wantBuckets := map[string]float64{"10": 2, "100": 3, "1000": 4, "+Inf": 5}
	var prev float64
	for _, le := range []string{"10", "100", "1000", "+Inf"} {
		s, ok := byKey("solve_duration_us_bucket", le)
		if !ok {
			t.Fatalf("missing bucket le=%s", le)
		}
		if s.value != wantBuckets[le] {
			t.Fatalf("bucket le=%s = %v, want %v", le, s.value, wantBuckets[le])
		}
		if s.value < prev {
			t.Fatalf("buckets not cumulative at le=%s", le)
		}
		prev = s.value
	}
	if s, ok := byKey("solve_duration_us_sum", ""); !ok || s.value != 5+5+50+500+5000 {
		t.Fatalf("_sum sample %+v ok=%v", s, ok)
	}
	if s, ok := byKey("solve_duration_us_count", ""); !ok || s.value != 5 {
		t.Fatalf("_count sample %+v ok=%v", s, ok)
	}

	// Stable ordering: names must appear sorted.
	var names []string
	for _, s := range samples {
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(s.name, "_bucket"), "_sum"), "_count")
		if len(names) == 0 || names[len(names)-1] != base {
			names = append(names, base)
		}
	}
	for i := 1; i < len(names); i++ {
		if names[i] < names[i-1] {
			t.Fatalf("metric order not sorted: %v", names)
		}
	}
}

func TestSanitizeMetricName(t *testing.T) {
	cases := map[string]string{
		"solve.count":    "solve_count",
		"http.in_flight": "http_in_flight",
		"9lives":         "_9lives",
		"a b-c":          "a_b_c",
		"":               "_",
		"ok:name_1":      "ok:name_1",
	}
	for in, want := range cases {
		if got := sanitizeMetricName(in); got != want {
			t.Errorf("sanitizeMetricName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestEscapeLabelValue(t *testing.T) {
	in := "a\\b\"c\nd"
	want := `a\\b\"c\nd`
	if got := escapeLabelValue(in); got != want {
		t.Errorf("escapeLabelValue = %q, want %q", got, want)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Inc()
	g.Add(5)
	g.Dec()
	g.Sub(2)
	if got := g.Value(); got != 3 {
		t.Fatalf("gauge value %d, want 3", got)
	}
	g.Set(-7)
	if got := g.Value(); got != -7 {
		t.Fatalf("gauge value %d, want -7", got)
	}
}

func TestRegistryGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("g")
	if r.Gauge("g") != g {
		t.Fatal("second lookup returned a different gauge")
	}
	g.Set(9)
	s := r.Snapshot()
	if s.Gauges["g"] != 9 {
		t.Fatalf("snapshot gauges %v", s.Gauges)
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"gauges"`) {
		t.Fatalf("snapshot JSON missing gauges key:\n%s", buf.String())
	}
}

func TestEventTryStepString(t *testing.T) {
	if got := EventTryStep.String(); got != "try_step" {
		t.Fatalf("EventTryStep.String() = %q", got)
	}
	if got := fmt.Sprint(numEventKinds); got != "7" {
		t.Fatalf("numEventKinds = %s, want 7", got)
	}
}
