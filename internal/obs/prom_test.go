package obs

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

func buildPromRegistry() *Registry {
	r := NewRegistry()
	r.Counter("solve.count").Add(7)
	r.Counter("solve.errors").Add(1)
	r.Gauge("http.in_flight").Set(3)
	r.Gauge("solve.pool.sessions").Set(-2) // gauges may go negative
	h := r.Histogram("solve.duration_us", []uint64{10, 100, 1000})
	for _, v := range []uint64{5, 5, 50, 500, 5000} {
		h.Observe(v)
	}
	// A name needing sanitization: dots and a dash become underscores.
	r.Counter("weird-name.with dots").Inc()
	// An info metric: constant 1, payload in the labels.
	r.Info("build_info", map[string]string{
		"version":    "v1.2.3",
		"go_version": "go1.99",
	})
	return r
}

func TestWritePrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := buildPromRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "prom.golden")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("WritePrometheus drifted from %s (re-run with -update):\ngot:\n%swant:\n%s",
			golden, buf.String(), want)
	}
}

func TestWritePrometheusDeterministic(t *testing.T) {
	r := buildPromRegistry()
	var a, b bytes.Buffer
	if err := r.WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("two writes of the same registry differ")
	}
}

func TestWritePrometheusRoundTrip(t *testing.T) {
	// The round trip through the exported parser: everything the writer
	// emits must come back intact, which is exactly what the load harness
	// relies on when it scrapes /metrics between stages.
	var buf bytes.Buffer
	if err := buildPromRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	m, err := ParsePrometheus(&buf)
	if err != nil {
		t.Fatal(err)
	}

	if got := m.Types["solve_count"]; got != "counter" {
		t.Fatalf("solve_count type %q", got)
	}
	if got := m.Types["http_in_flight"]; got != "gauge" {
		t.Fatalf("http_in_flight type %q", got)
	}
	if got := m.Types["solve_duration_us"]; got != "histogram" {
		t.Fatalf("solve_duration_us type %q", got)
	}
	if got := m.Types["build_info"]; got != "gauge" {
		t.Fatalf("build_info type %q", got)
	}
	if _, ok := m.Types["weird_name_with_dots"]; !ok {
		t.Fatalf("sanitized name missing from types %v", m.Types)
	}

	if v, ok := m.Value("solve_count"); !ok || v != 7 {
		t.Fatalf("solve_count = %v ok=%v", v, ok)
	}
	if v, ok := m.Value("solve_pool_sessions"); !ok || v != -2 {
		t.Fatalf("solve_pool_sessions = %v ok=%v", v, ok)
	}

	// The info metric round-trips through its labels.
	labels, ok := m.Labels("build_info")
	if !ok || labels["version"] != "v1.2.3" || labels["go_version"] != "go1.99" {
		t.Fatalf("build_info labels %v ok=%v", labels, ok)
	}
	if v, _ := m.Value("build_info"); v != 1 {
		t.Fatalf("build_info value %v, want 1", v)
	}

	// Histogram series: buckets are cumulative, capped by +Inf == _count.
	wantBuckets := map[string]float64{"10": 2, "100": 3, "1000": 4, "+Inf": 5}
	buckets := m.ValuesByLabel("solve_duration_us_bucket", "le")
	var prev float64
	for _, le := range []string{"10", "100", "1000", "+Inf"} {
		v, ok := buckets[le]
		if !ok {
			t.Fatalf("missing bucket le=%s", le)
		}
		if v != wantBuckets[le] {
			t.Fatalf("bucket le=%s = %v, want %v", le, v, wantBuckets[le])
		}
		if v < prev {
			t.Fatalf("buckets not cumulative at le=%s", le)
		}
		prev = v
	}
	if v, ok := m.Value("solve_duration_us_sum"); !ok || v != 5+5+50+500+5000 {
		t.Fatalf("_sum = %v ok=%v", v, ok)
	}
	if v, ok := m.Value("solve_duration_us_count"); !ok || v != 5 {
		t.Fatalf("_count = %v ok=%v", v, ok)
	}

	// The reconstructed histogram matches the source snapshot exactly.
	snap, err := m.Histogram("solve_duration_us")
	if err != nil {
		t.Fatal(err)
	}
	want := HistogramSnapshot{
		Bounds: []uint64{10, 100, 1000},
		Counts: []uint64{2, 1, 1, 1},
		Count:  5,
		Sum:    5 + 5 + 50 + 500 + 5000,
	}
	if !reflect.DeepEqual(snap, want) {
		t.Fatalf("reconstructed histogram %+v, want %+v", snap, want)
	}
	if got := snap.Quantile(0.99); got != 1000 {
		t.Fatalf("reconstructed p99 = %d, want 1000", got)
	}

	// Stable ordering: names must appear sorted.
	var names []string
	for _, s := range m.Samples {
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(s.Name, "_bucket"), "_sum"), "_count")
		if len(names) == 0 || names[len(names)-1] != base {
			names = append(names, base)
		}
	}
	for i := 1; i < len(names); i++ {
		if names[i] < names[i-1] {
			t.Fatalf("metric order not sorted: %v", names)
		}
	}
}

func TestSanitizeMetricName(t *testing.T) {
	cases := map[string]string{
		"solve.count":    "solve_count",
		"http.in_flight": "http_in_flight",
		"9lives":         "_9lives",
		"a b-c":          "a_b_c",
		"":               "_",
		"ok:name_1":      "ok:name_1",
	}
	for in, want := range cases {
		if got := sanitizeMetricName(in); got != want {
			t.Errorf("sanitizeMetricName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestEscapeLabelValue(t *testing.T) {
	in := "a\\b\"c\nd"
	want := `a\\b\"c\nd`
	if got := escapeLabelValue(in); got != want {
		t.Errorf("escapeLabelValue = %q, want %q", got, want)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Inc()
	g.Add(5)
	g.Dec()
	g.Sub(2)
	if got := g.Value(); got != 3 {
		t.Fatalf("gauge value %d, want 3", got)
	}
	g.Set(-7)
	if got := g.Value(); got != -7 {
		t.Fatalf("gauge value %d, want -7", got)
	}
}

func TestRegistryGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("g")
	if r.Gauge("g") != g {
		t.Fatal("second lookup returned a different gauge")
	}
	g.Set(9)
	s := r.Snapshot()
	if s.Gauges["g"] != 9 {
		t.Fatalf("snapshot gauges %v", s.Gauges)
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"gauges"`) {
		t.Fatalf("snapshot JSON missing gauges key:\n%s", buf.String())
	}
}

func TestEventTryStepString(t *testing.T) {
	if got := EventTryStep.String(); got != "try_step" {
		t.Fatalf("EventTryStep.String() = %q", got)
	}
	if got := fmt.Sprint(numEventKinds); got != "7" {
		t.Fatalf("numEventKinds = %s, want 7", got)
	}
}
