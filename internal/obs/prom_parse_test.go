package obs

import (
	"reflect"
	"strings"
	"testing"
)

func mustParseProm(t *testing.T, in string) *PromMetrics {
	t.Helper()
	m, err := ParsePrometheus(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ParsePrometheus: %v\ninput:\n%s", err, in)
	}
	return m
}

func TestParsePrometheusBasics(t *testing.T) {
	in := "# HELP up whether the target is up\n" +
		"# TYPE up gauge\n" +
		"up 1\n" +
		"\n" +
		"# a free-form comment\n" +
		"# TYPE http_requests_total counter\n" +
		"http_requests_total{method=\"get\",code=\"200\"} 1027 1395066363000\n" +
		"http_requests_total{method=\"post\",code=\"200\"} 3\n"
	m := mustParseProm(t, in)
	if m.Types["up"] != "gauge" || m.Types["http_requests_total"] != "counter" {
		t.Fatalf("types = %v", m.Types)
	}
	if len(m.Samples) != 3 {
		t.Fatalf("got %d samples, want 3", len(m.Samples))
	}
	if v, ok := m.Value("up"); !ok || v != 1 {
		t.Fatalf("up = %v ok=%v", v, ok)
	}
	reqs := m.Find("http_requests_total")
	if len(reqs) != 2 {
		t.Fatalf("Find returned %d samples", len(reqs))
	}
	// The timestamped sample still parses to its value, not the timestamp.
	if reqs[0].Value != 1027 || reqs[0].Label("method") != "get" {
		t.Fatalf("first sample %+v", reqs[0])
	}
	if _, ok := m.Value("absent_series"); ok {
		t.Fatal("Value claimed a sample for an absent series")
	}
}

func TestParsePrometheusEscapedLabels(t *testing.T) {
	in := `weird{path="C:\\tmp\\x",quote="say \"hi\"",nl="a\nb",comma="x,y=z"} 4` + "\n"
	m := mustParseProm(t, in)
	s := m.Samples[0]
	want := map[string]string{
		"path":  `C:\tmp\x`,
		"quote": `say "hi"`,
		"nl":    "a\nb",
		"comma": "x,y=z",
	}
	if !reflect.DeepEqual(s.Labels, want) {
		t.Fatalf("labels = %#v, want %#v", s.Labels, want)
	}
	if s.Value != 4 {
		t.Fatalf("value = %v", s.Value)
	}
	// Writer-side escaping must survive a full round trip.
	for k, v := range want {
		if got := escapeLabelValue(v); strings.ContainsAny(got, "\n") {
			t.Fatalf("escapeLabelValue(%q=%q) left a raw newline: %q", k, v, got)
		}
	}
}

func TestParsePrometheusMalformed(t *testing.T) {
	cases := map[string]string{
		"no value":               "lonely_name\n",
		"bad value":              "m one\n",
		"too many fields":        "m 1 2 3\n",
		"illegal name":           "9lives 1\n",
		"illegal name unicode":   "métrique 1\n",
		"unterminated labels":    `m{a="b" 1` + "\n",
		"unterminated value":     `m{a="b} 1` + "\n",
		"label missing equals":   `m{ab} 1` + "\n",
		"label value not quoted": `m{a=b} 1` + "\n",
		"unknown escape":         `m{a="\q"} 1` + "\n",
		"dangling escape":        `m{a="x\` + "\n",
		"malformed TYPE comment": "# TYPE too many words here\n",
		"TYPE illegal name":      "# TYPE 9lives gauge\n",
	}
	for name, in := range cases {
		if _, err := ParsePrometheus(strings.NewReader(in)); err == nil {
			t.Errorf("%s: ParsePrometheus(%q) succeeded, want error", name, in)
		}
	}
}

func TestParsePrometheusHistogramReconstruction(t *testing.T) {
	in := "# TYPE rtt_us histogram\n" +
		"rtt_us_bucket{le=\"10\"} 2\n" +
		"rtt_us_bucket{le=\"100\"} 2\n" +
		"rtt_us_bucket{le=\"1000\"} 7\n" +
		"rtt_us_bucket{le=\"+Inf\"} 9\n" +
		"rtt_us_sum 4242\n" +
		"rtt_us_count 9\n"
	m := mustParseProm(t, in)
	snap, err := m.Histogram("rtt_us")
	if err != nil {
		t.Fatal(err)
	}
	want := HistogramSnapshot{
		Bounds: []uint64{10, 100, 1000},
		Counts: []uint64{2, 0, 5, 2},
		Count:  9,
		Sum:    4242,
	}
	if !reflect.DeepEqual(snap, want) {
		t.Fatalf("reconstructed %+v, want %+v", snap, want)
	}
	if got := snap.Quantile(0.5); got != 1000 {
		t.Fatalf("p50 = %d, want 1000", got)
	}
}

func TestParsePrometheusHistogramErrors(t *testing.T) {
	cases := map[string]string{
		"no buckets": "h_sum 1\nh_count 1\n",
		"no count":   "h_bucket{le=\"+Inf\"} 1\nh_sum 1\n",
		"no inf":     "h_bucket{le=\"5\"} 1\nh_sum 1\nh_count 1\n",
		"bad bound":  "h_bucket{le=\"x\"} 1\nh_bucket{le=\"+Inf\"} 1\nh_count 1\n",
		"decreasing": "h_bucket{le=\"5\"} 3\nh_bucket{le=\"9\"} 1\nh_bucket{le=\"+Inf\"} 3\nh_count 3\n",
	}
	for name, in := range cases {
		m := mustParseProm(t, in)
		if _, err := m.Histogram("h"); err == nil {
			t.Errorf("%s: Histogram succeeded, want error", name)
		}
	}
}

func TestParsePrometheusInfoLookup(t *testing.T) {
	r := NewRegistry()
	r.Info("build_info", map[string]string{"version": "abc", "shards": "4"})
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	m := mustParseProm(t, b.String())
	labels, ok := m.Labels("build_info")
	if !ok || labels["version"] != "abc" || labels["shards"] != "4" {
		t.Fatalf("build_info labels %v ok=%v", labels, ok)
	}
	// Replacing an info metric keeps a single sample with the new labels.
	r.Info("build_info", map[string]string{"version": "def"})
	b.Reset()
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	m = mustParseProm(t, b.String())
	if got := m.Find("build_info"); len(got) != 1 || got[0].Label("version") != "def" {
		t.Fatalf("after replace: %+v", got)
	}
}
