// The runtime collector: a periodic goroutine that samples process health
// (goroutine count, heap, GC pause, WAL fsync latency) into the registry
// and republishes the SLO burn-rate gauges, so a Prometheus scrape always
// sees fresh values without every handler paying for runtime.ReadMemStats.
package obs

import (
	"runtime"
	"sync"
	"time"
)

// Collector samples runtime health into a registry on a fixed interval.
// Construct with NewCollector, then Start; Stop is idempotent. Tick is
// exported so tests and scrape handlers can force a sample synchronously.
type Collector struct {
	reg      *Registry
	slo      *SLOTracker
	interval time.Duration

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// NewCollector builds a collector over reg (required) and slo (optional).
// interval <= 0 defaults to 10s.
func NewCollector(reg *Registry, slo *SLOTracker, interval time.Duration) *Collector {
	if interval <= 0 {
		interval = 10 * time.Second
	}
	return &Collector{
		reg:      reg,
		slo:      slo,
		interval: interval,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// Start launches the sampling goroutine (idempotent). One sample is taken
// immediately so the series exist before the first interval elapses.
func (c *Collector) Start() {
	c.startOnce.Do(func() {
		c.Tick()
		go c.run()
	})
}

func (c *Collector) run() {
	defer close(c.done)
	t := time.NewTicker(c.interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			c.Tick()
		case <-c.stop:
			return
		}
	}
}

// Stop halts the sampling goroutine and waits for it to exit. Safe to call
// without Start and safe to call twice.
func (c *Collector) Stop() {
	c.stopOnce.Do(func() { close(c.stop) })
	// If Start never ran, claim the once ourselves so the wait below has a
	// closed channel instead of a goroutine that will never exist.
	c.startOnce.Do(func() { close(c.done) })
	<-c.done
}

// Tick takes one sample: runtime gauges, the WAL fsync p99 derived from the
// wal.fsync.duration_us histogram when present, and the SLO burn gauges.
func (c *Collector) Tick() {
	if c.reg == nil {
		return
	}
	c.reg.Gauge("runtime.goroutines").Set(int64(runtime.NumGoroutine()))
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	c.reg.Gauge("runtime.heap_alloc_bytes").Set(int64(ms.HeapAlloc))
	c.reg.Gauge("runtime.heap_sys_bytes").Set(int64(ms.HeapSys))
	c.reg.Gauge("runtime.gc_pause_total_us").Set(int64(ms.PauseTotalNs / 1000))
	c.reg.Gauge("runtime.gc_cycles").Set(int64(ms.NumGC))
	if h := c.reg.LookupHistogram("wal.fsync.duration_us"); h != nil {
		c.reg.Gauge("wal.fsync.p99_us").Set(int64(h.Snapshot().Quantile(0.99)))
	}
	c.slo.Publish(c.reg)
}
